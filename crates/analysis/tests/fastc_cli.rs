//! End-to-end tests of the `fastc` binary against the sample programs in
//! `programs/`: the classic run mode (compile + evaluate + assertions) and
//! the `fastc check` analysis mode (FA001-FA100 diagnostics, JSON output,
//! and the documented exit-code contract).

use std::path::PathBuf;
use std::process::Command;

fn fastc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastc"))
}

fn programs_dir() -> PathBuf {
    // crates/analysis -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("programs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

// ---------------------------------------------------------------- run mode

#[test]
fn all_good_programs_pass() {
    for entry in std::fs::read_dir(programs_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("fast") {
            continue;
        }
        if path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("buggy")
        {
            continue;
        }
        let out = fastc().arg(&path).output().unwrap();
        assert!(
            out.status.success(),
            "{} failed:\n{}{}",
            path.display(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 failed"), "{stdout}");
    }
}

#[test]
fn buggy_sanitizer_fails_with_counterexample() {
    let path = programs_dir().join("sanitizer_buggy.fast");
    let out = fastc().arg(&path).output().unwrap();
    assert!(!out.status.success(), "the buggy program must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("counterexample"), "{stdout}");
    assert!(stdout.contains("script"), "{stdout}");
}

#[test]
fn quiet_mode_only_prints_failures() {
    let ok = programs_dir().join("example2.fast");
    let out = fastc().arg(&ok).arg("--quiet").output().unwrap();
    assert!(out.status.success());
    assert!(
        out.stdout.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn stats_flag_reports_sizes() {
    let path = programs_dir().join("deforestation.fast");
    let out = fastc().arg(&path).arg("--stats").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trans map_caesar:"), "{stdout}");
    assert!(stdout.contains("lang  not_emp_list:"), "{stdout}");
    assert!(stdout.contains("tree  input:"), "{stdout}");
}

#[test]
fn missing_file_and_bad_args() {
    let out = fastc().arg("/nonexistent/x.fast").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = fastc().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = fastc().arg("--help").output().unwrap();
    assert!(out.status.success());
}

#[test]
fn syntax_error_reports_position() {
    let path = write_temp("broken.fast", "type T { }");
    let out = fastc().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error at 1:"), "{stderr}");
}

/// `--stats` must end stdout with one machine-readable JSON object
/// carrying the documented counter/histogram/timer keys, with every map
/// deterministically sorted by name.
#[test]
fn stats_json_is_parseable_and_sorted() {
    let path = programs_dir().join("sanitizer.fast");
    let out = fastc().arg(&path).arg("--stats").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_text = stats_json(&stdout);
    let json = fast_json::Json::parse(json_text).expect("valid snapshot JSON");

    let counters = json.get("counters").expect("counters key");
    assert!(
        counters
            .get("smt.sat_queries")
            .and_then(fast_json::Json::as_int)
            .unwrap()
            > 0
    );
    assert!(
        counters
            .get("compose.pair_states")
            .and_then(fast_json::Json::as_int)
            .unwrap()
            > 0
    );
    // The sanitizer run exercises the solver, so its latency histogram
    // must be populated with the documented percentile fields.
    let smt_check = json.get("hists").and_then(|h| h.get("smt.check")).unwrap();
    assert!(
        smt_check
            .get("count")
            .and_then(fast_json::Json::as_int)
            .unwrap()
            > 0
    );
    for key in [
        "p50_ns", "p90_ns", "p99_ns", "max_ns", "mean_ns", "total_ns",
    ] {
        assert!(smt_check.get(key).is_some(), "missing hists key {key}");
    }
    // Deterministic output: object keys arrive sorted.
    for section in ["counters", "hists", "timers"] {
        let fast_json::Json::Object(entries) = json.get(section).unwrap() else {
            panic!("{section} is not an object");
        };
        let keys: Vec<&String> = entries.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{section} keys are not sorted");
    }
}

/// The telemetry snapshot is the pretty-printed JSON object that closes
/// stdout; it starts at the last line that is exactly `{`.
fn stats_json(stdout: &str) -> &str {
    let start = stdout
        .lines()
        .rev()
        .find(|l| *l == "{")
        .map(|l| l.as_ptr() as usize - stdout.as_ptr() as usize)
        .expect("a JSON object on stdout");
    &stdout[start..]
}

// -------------------------------------------------------------- check mode

/// `fastc check --deny-warnings` over every shipped program: the
/// "buggy"-named fixtures must be flagged, everything else must be clean.
#[test]
fn check_all_shipped_programs() {
    for entry in std::fs::read_dir(programs_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("fast") {
            continue;
        }
        let buggy = path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("buggy");
        let out = fastc()
            .arg("check")
            .arg(&path)
            .arg("--deny-warnings")
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        if buggy {
            assert!(
                !out.status.success(),
                "{} should be flagged by `fastc check`:\n{stderr}",
                path.display()
            );
        } else {
            assert!(
                out.status.success(),
                "{} should be clean under `fastc check --deny-warnings`:\n{stderr}",
                path.display()
            );
            assert!(stderr.contains("0 error(s), 0 warning(s)"), "{stderr}");
        }
    }
}

#[test]
fn check_buggy_sanitizer_reports_fa100_with_counterexample() {
    let path = programs_dir().join("sanitizer_buggy.fast");
    let out = fastc().arg("check").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "FA100 is an error diagnostic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FA100"), "{stderr}");
    assert!(stderr.contains("counterexample input:"), "{stderr}");
    assert!(stderr.contains("script"), "{stderr}");
}

#[test]
fn check_json_output_is_machine_readable() {
    let path = programs_dir().join("sanitizer_buggy.fast");
    let out = fastc()
        .arg("check")
        .arg(&path)
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = fast_json::Json::parse(&stdout).expect("valid JSON on stdout");
    assert!(
        json.get("errors")
            .and_then(fast_json::Json::as_int)
            .unwrap()
            >= 1
    );
    let diags = json
        .get("diagnostics")
        .and_then(fast_json::Json::as_array)
        .unwrap();
    let fa100 = diags
        .iter()
        .find(|d| d.get("code").and_then(fast_json::Json::as_str) == Some("FA100"))
        .expect("an FA100 diagnostic in the JSON output");
    assert_eq!(
        fa100.get("severity").and_then(fast_json::Json::as_str),
        Some("error")
    );
    assert!(fa100.get("line").and_then(fast_json::Json::as_int).unwrap() >= 1);
    assert!(fa100.get("col").and_then(fast_json::Json::as_int).unwrap() >= 1);
}

#[test]
fn check_deny_warnings_controls_exit_code() {
    // A program whose only defect is a warning: two overlapping guards on
    // the same (state, constructor) pair (FA002).
    let src = "type T[x: Int] { a(2), n(0) }\n\
               trans overlap: T -> T {\n\
                 a(l, r) where (x > 0) to (n [1])\n\
               | a(l, r) where (x > 5) to (n [2])\n\
               }\n";
    let path = write_temp("warn_only.fast", src);
    let out = fastc().arg("check").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "warnings alone exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FA002"), "{stderr}");

    let out = fastc()
        .arg("check")
        .arg(&path)
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "--deny-warnings promotes warnings to a failing exit"
    );
}

#[test]
fn check_syntax_error_exits_2() {
    let path = write_temp("broken_check.fast", "type T { }");
    let out = fastc().arg("check").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error at 1:"), "{stderr}");
}

#[test]
fn check_missing_file_and_bad_args() {
    let out = fastc()
        .arg("check")
        .arg("/nonexistent/x.fast")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = fastc().arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = fastc().arg("check").arg("--help").output().unwrap();
    assert!(out.status.success());
}

// ------------------------------------------------------------ profile mode

/// End-to-end `fastc profile`: phase tree and hot-rule table on stdout,
/// and a well-formed Chrome trace on disk with spans from the smt,
/// compose, and rt subsystems.
#[test]
fn profile_sanitizer_emits_phase_tree_hot_rules_and_chrome_trace() {
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("profile_trace.json");
    let jsonl = dir.join("profile_trace.jsonl");
    let out = fastc()
        .arg("profile")
        .arg(programs_dir().join("sanitizer.fast"))
        .args(["--trees", "50", "--seed", "7", "--top", "5"])
        .arg("--trace")
        .arg(&trace)
        .arg("--jsonl")
        .arg(&jsonl)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "profile failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase times"), "{stdout}");
    assert!(stdout.contains("hot rules"), "{stdout}");
    assert!(stdout.contains("rt.run_batch"), "{stdout}");
    assert!(stdout.contains("profile.compile"), "{stdout}");
    // The exemplar store surfaces the slowest items of the run.
    assert!(stdout.contains("slow items"), "{stdout}");
    assert!(stdout.contains("tree id"), "{stdout}");

    // The Chrome trace round-trips through fast-json and carries spans
    // from each pipeline stage, nested via depth.
    let text = std::fs::read_to_string(&trace).unwrap();
    let json = fast_json::Json::parse(&text).expect("valid Chrome trace JSON");
    let events = json
        .get("traceEvents")
        .and_then(fast_json::Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(fast_json::Json::as_str))
        .collect();
    for expected in ["smt.solve", "compose.total", "rt.run_batch", "rt.item"] {
        assert!(names.contains(&expected), "no '{expected}' span in trace");
    }
    assert!(events.iter().any(|e| {
        e.get("args")
            .and_then(|a| a.get("depth"))
            .and_then(fast_json::Json::as_int)
            .is_some_and(|d| d > 0)
    }));

    // The JSONL export has one JSON object per line.
    let lines = std::fs::read_to_string(&jsonl).unwrap();
    assert!(!lines.trim().is_empty());
    for line in lines.lines() {
        fast_json::Json::parse(line).expect("each jsonl line parses");
    }
}

#[test]
fn profile_rejects_unknown_transducer_and_bad_args() {
    let path = programs_dir().join("sanitizer.fast");
    let out = fastc()
        .arg("profile")
        .arg(&path)
        .args(["--trans", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no transducer 'nope'"), "{stderr}");

    let out = fastc()
        .arg("profile")
        .arg(&path)
        .args(["--trees", "many"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = fastc().arg("profile").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------- pipeline mode

#[test]
fn pipeline_mode_fuses_deforestation_chain() {
    let path = programs_dir().join("deforestation.fast");
    let out = fastc()
        .arg(&path)
        .args([
            "--pipeline",
            "map_caesar,filter_ev,map_caesar",
            "--trees",
            "40",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 stages -> 1 segment"), "{stdout}");
    assert!(stdout.contains("fused"), "{stdout}");
    assert!(stdout.contains("left factor is single-valued"), "{stdout}");
    assert!(stdout.contains("40 ok / 0 err"), "{stdout}");
    assert!(stdout.contains("segment 0"), "{stdout}");
}

#[test]
fn pipeline_mode_cascades_unfusable_boundary() {
    // `amb` is not single-valued, `dup` is not linear: the boundary
    // must cascade into two segments and still evaluate cleanly.
    let path = write_temp(
        "pipeline_cascade.fast",
        r#"
        type T[i: Int] { z(0), n(2) }
        trans dup: T -> T {
          z() to (z [i])
        | n(x, y) to (n [i] (dup x) (dup x))
        }
        trans amb: T -> T {
          z() to (z [i])
        | z() to (z [i + 1])
        | n(x, y) to (n [i] (amb x) (amb y))
        }
        "#,
    );
    let out = fastc()
        .arg(&path)
        .args(["--pipeline", "amb,dup", "--trees", "20"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 stages -> 2 segments"), "{stdout}");
    assert!(stdout.contains("cascaded"), "{stdout}");
    assert!(stdout.contains("not single-valued"), "{stdout}");
    assert!(stdout.contains("segment 1"), "{stdout}");
}

// ------------------------------------------------- build / artifact mode

/// `fastc build` is byte-reproducible: building any shipped program twice
/// yields identical `.fastc` files, each opening with the documented
/// magic and version. This is the CLI face of the determinism guarantee
/// CI gates on (`cmp` of two builds per program).
#[test]
fn build_is_deterministic_for_every_program() {
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(programs_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("fast") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let out1 = dir.join(format!("{stem}.det1.fastc"));
        let out2 = dir.join(format!("{stem}.det2.fastc"));
        for out_path in [&out1, &out2] {
            let out = fastc()
                .arg("build")
                .arg(&path)
                .arg("-o")
                .arg(out_path)
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "build {} failed:\n{}{}",
                path.display(),
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
        }
        let b1 = std::fs::read(&out1).unwrap();
        let b2 = std::fs::read(&out2).unwrap();
        assert_eq!(b1, b2, "{} built non-deterministically", path.display());
        assert_eq!(&b1[..4], b"FSTC", "bad magic for {}", path.display());
        assert_eq!(
            u32::from_le_bytes(b1[4..8].try_into().unwrap()),
            1,
            "unexpected format version for {}",
            path.display()
        );
    }
}

/// The differential gate: a pipeline run from a prebuilt artifact prints
/// byte-for-byte the same report as the source-compiled run (fusion
/// decisions included), and per-transducer batch runs agree on the full
/// printed output multisets.
#[test]
fn artifact_runs_match_source_runs() {
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let src = programs_dir().join("sanitizer_pipeline.fast");
    let art = dir.join("san_pipe.diff.fastc");
    let out = fastc()
        .arg("build")
        .arg(&src)
        .arg("-o")
        .arg(&art)
        .args(["--pipeline", "remScript,esc"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Pipeline: artifact vs source (quiet: memo stats are scheduling-
    // dependent and the interner line depends on process history).
    let from_art = fastc()
        .arg("--artifact")
        .arg(&art)
        .args(["--pipeline", "remScript,esc", "--trees", "60", "-q"])
        .output()
        .unwrap();
    let from_src = fastc()
        .arg(&src)
        .args(["--pipeline", "remScript,esc", "--trees", "60", "-q"])
        .output()
        .unwrap();
    assert!(from_art.status.success() && from_src.status.success());
    assert_eq!(
        String::from_utf8_lossy(&from_art.stdout),
        String::from_utf8_lossy(&from_src.stdout),
        "artifact pipeline run diverges from source run"
    );
    let stdout = String::from_utf8_lossy(&from_art.stdout);
    assert!(stdout.contains("ran 60 trees"), "{stdout}");

    // Transducers: full per-input output multisets must agree.
    let from_art = fastc()
        .arg("--artifact")
        .arg(&art)
        .args(["--all-trans", "--print-outputs", "--trees", "40"])
        .output()
        .unwrap();
    let from_src = fastc()
        .arg(&src)
        .args(["--all-trans", "--print-outputs", "--trees", "40"])
        .output()
        .unwrap();
    assert!(from_art.status.success() && from_src.status.success());
    assert_eq!(
        String::from_utf8_lossy(&from_art.stdout),
        String::from_utf8_lossy(&from_src.stdout),
        "artifact transducer runs diverge from source runs"
    );
    let stdout = String::from_utf8_lossy(&from_art.stdout);
    assert!(stdout.contains("trans remScript:"), "{stdout}");
    assert!(stdout.contains("trans esc:"), "{stdout}");
}

#[test]
fn artifact_mode_error_contract() {
    // Missing artifact file: I/O problem, exit 2.
    let out = fastc()
        .arg("--artifact")
        .arg("/nonexistent/x.fastc")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load artifact"), "{stderr}");

    // Corrupt artifact: typed decode failure, exit 1.
    let bad = write_temp("garbage.fastc", "this is not an artifact");
    let out = fastc().arg("--artifact").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load artifact"), "{stderr}");

    // Source path and --artifact together: usage error.
    let out = fastc()
        .arg(programs_dir().join("example2.fast"))
        .arg("--artifact")
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Unknown pipeline / transducer names inside a valid artifact.
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let art = dir.join("errs.fastc");
    let out = fastc()
        .arg("build")
        .arg(programs_dir().join("sanitizer_pipeline.fast"))
        .arg("-o")
        .arg(&art)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = fastc()
        .arg("--artifact")
        .arg(&art)
        .args(["--pipeline", "remScript,esc"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "pipeline was not stored");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no pipeline 'remScript,esc'"), "{stderr}");
    let out = fastc()
        .arg("--artifact")
        .arg(&art)
        .args(["--trans", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no transducer 'nope'"), "{stderr}");
}

#[test]
fn build_mode_arguments_and_defaults() {
    // No input file.
    let out = fastc().arg("build").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Unknown pipeline stage.
    let out = fastc()
        .arg("build")
        .arg(programs_dir().join("sanitizer_pipeline.fast"))
        .arg("-o")
        .arg(std::env::temp_dir().join("fastc_test/unused.fastc"))
        .args(["--pipeline", "remScript,nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no transformation 'nope'"), "{stderr}");

    // Default output path: next to the source, extension swapped.
    let src = programs_dir().join("example2.fast");
    let copy = write_temp("default_out.fast", &std::fs::read_to_string(src).unwrap());
    let out = fastc().arg("build").arg(&copy).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let produced = copy.with_extension("fastc");
    assert!(produced.exists(), "default .fastc not written");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote "), "{stdout}");
    assert!(stdout.contains("transducers"), "{stdout}");
}

#[test]
fn pipeline_mode_rejects_unknown_stage_and_empty_list() {
    let path = programs_dir().join("deforestation.fast");
    let out = fastc()
        .arg(&path)
        .args(["--pipeline", "map_caesar,nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no transformation 'nope'"), "{stderr}");

    let out = fastc()
        .arg(&path)
        .args(["--pipeline", ","])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// -------------------------------------------------------------- watch mode

/// End-to-end `fastc watch`: one stats line per tick, a closing summary,
/// windowed JSONL export, and a schema-versioned BENCH summary.
#[test]
fn watch_prints_windowed_stats_and_writes_artifacts() {
    let path = programs_dir().join("sanitizer.fast");
    let dir = std::env::temp_dir().join("fastc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("watch_windows.jsonl");
    let bench = dir.join("watch_bench.json");
    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--ticks", "3", "--trees", "20", "--window", "2"])
        .args(["--jsonl", jsonl.to_str().unwrap()])
        .args(["--bench-json", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "watch failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One line per tick with the windowed signals, then the summary.
    for tick in 1..=3 {
        assert!(stdout.contains(&format!("tick   {tick}/3")), "{stdout}");
    }
    assert!(stdout.contains("items/s"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
    assert!(stdout.contains("intern"), "{stdout}");
    assert!(stdout.contains("0 SLO violation(s)"), "{stdout}");

    // JSONL: one object per retained window, each with a seq and delta.
    let lines: Vec<String> = std::fs::read_to_string(&jsonl)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"seq\""), "{line}");
        assert!(line.contains("\"delta\""), "{line}");
    }

    // BENCH summary: common header plus the windowed headline numbers.
    let bench_text = std::fs::read_to_string(&bench).unwrap();
    assert!(bench_text.contains("\"schema_version\": 1"), "{bench_text}");
    assert!(
        bench_text.contains("\"bench\": \"obs_watch\""),
        "{bench_text}"
    );
    assert!(bench_text.contains("\"p99_ns\""), "{bench_text}");
    assert!(
        bench_text.contains("\"intern_resident_bytes\""),
        "{bench_text}"
    );
    assert!(bench_text.contains("\"exemplar_count\""), "{bench_text}");
}

/// The committed CI fixtures drive the exit-code contract: the sanitizer
/// SLO passes (exit 0), the deliberately-unmeetable spec fails every
/// tick (exit 1, violations on stderr).
#[test]
fn watch_slo_fixtures_pass_and_fail_as_committed() {
    let path = programs_dir().join("sanitizer.fast");
    let ci = programs_dir().parent().unwrap().join("ci");
    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--ticks", "2", "--trees", "10", "-q"])
        .args(["--slo", ci.join("slo_sanitizer.json").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "sanitizer SLO must pass:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--ticks", "2", "--trees", "10", "-q"])
        .args(["--slo", ci.join("slo_failing.json").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "unmeetable SLO must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("SLO violated: max_intern_resident_bytes"),
        "{stderr}"
    );
}

/// Usage errors: a malformed SLO spec, an unknown rule, and zero ticks
/// are all rejected up front with exit 2.
#[test]
fn watch_rejects_bad_slo_and_bad_args() {
    let path = programs_dir().join("sanitizer.fast");
    let bad_json = write_temp("slo_bad.json", "{not json");
    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--slo", bad_json.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad SLO spec"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let typo = write_temp("slo_typo.json", r#"{"p99_latency_sm": 5}"#);
    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--slo", typo.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown SLO rule"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fastc()
        .arg("watch")
        .arg(&path)
        .args(["--ticks", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = fastc().arg("watch").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
