//! Differential properties for the FA101 pipeline contract check
//! ([`fast_analysis::check_pipeline`]), driven through the language
//! surface: `bumpA ; bumpB` chains over the `evens` language shift every
//! label by `a + b`, so the contract `evens -> evens` holds exactly when
//! `a + b` is even — an oracle the checker must agree with on both
//! sides. On violations, the replayed counterexample is re-validated
//! end-to-end: the input is in the declared input language, every
//! intermediate really is an output of its stage on the previous tree,
//! and the final tree falls outside the output language.

use fast_analysis::{check_pipeline, PipelineOutcome};
use proptest::prelude::*;

fn program(a: u8, b: u8) -> String {
    format!(
        r#"
        type T[i: Int] {{ nil(0), cons(1) }}
        lang evens: T {{
          nil() where (i % 2 = 0)
        | cons(x) where (i % 2 = 0) given (evens x)
        }}
        trans bumpA: T -> T {{
          nil() to (nil [i + {a}])
        | cons(x) to (cons [i + {a}] (bumpA x))
        }}
        trans bumpB: T -> T {{
          nil() to (nil [i + {b}])
        | cons(x) to (cons [i + {b}] (bumpB x))
        }}
        def pipe: evens -> evens := (compose bumpA bumpB)
        "#
    )
}

fn compile(src: &str) -> (fast_lang::Program, fast_lang::Compiled) {
    let program = fast_lang::parse(src).expect("parse");
    let mut sink = fast_lang::DiagSink::new();
    let compiled = fast_lang::compile_ast(&program, &mut sink).expect("compile");
    assert!(sink.diagnostics().is_empty(), "{:?}", sink.diagnostics());
    (program, compiled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The checker's verdict matches the parity oracle, and a reported
    /// violation replays faithfully through the actual stages.
    #[test]
    fn fa101_agrees_with_the_parity_oracle(a in 0u8..4, b in 0u8..4) {
        let src = program(a, b);
        let (ast, compiled) = compile(&src);
        let stages = [
            compiled.transducer("bumpA").unwrap(),
            compiled.transducer("bumpB").unwrap(),
        ];
        let evens = compiled.lang("evens").unwrap();
        let ty = compiled.tree_type("T").unwrap();
        let should_violate = (a + b) % 2 == 1;

        // The full analyzer routes the chain contract to FA101 (never
        // FA100 — the chain is not eagerly composed).
        let diags = fast_analysis::analyze(&ast, &compiled);
        let codes: Vec<_> = diags.iter().filter_map(|d| d.code).collect();
        prop_assert!(!codes.contains(&"FA100"), "{diags:?}");
        prop_assert_eq!(
            codes.contains(&"FA101"),
            should_violate,
            "a={} b={}: {:?}", a, b, diags,
        );

        // The public entry point agrees, and its counterexample is real.
        match check_pipeline(&stages, Some(evens), evens) {
            PipelineOutcome::Satisfied => prop_assert!(!should_violate),
            PipelineOutcome::Violated(v) => {
                prop_assert!(should_violate);
                prop_assert!(
                    evens.accepts(&v.input),
                    "counterexample input {} outside the input language",
                    v.input.display(ty),
                );
                prop_assert_eq!(v.intermediates.len(), stages.len());
                let mut cur = v.input.clone();
                for (s, t) in stages.iter().zip(&v.intermediates) {
                    let outs = s.run(&cur).unwrap();
                    prop_assert!(
                        outs.contains(t),
                        "{} is not an output of its stage on {}",
                        t.display(ty), cur.display(ty),
                    );
                    cur = t.clone();
                }
                prop_assert!(
                    !evens.accepts(&cur),
                    "final tree {} is inside the output language",
                    cur.display(ty),
                );
            }
            PipelineOutcome::Unknown(reason) => {
                prop_assert!(false, "checker punted on a decidable chain: {}", reason);
            }
        }
    }
}
