//! Property test: the solver-backed FA003 exhaustiveness verdict from
//! [`fast_analysis::guards_exhaustive`] agrees with brute-force guard
//! evaluation over a small integer grid.
//!
//! The analyzer decides exhaustiveness over *all* labels, so the two
//! directions are asymmetric:
//!
//! * analyzer says exhaustive  ⇒ every grid label satisfies some guard;
//! * analyzer returns a witness ⇒ the witness evades every guard;
//! * some grid label is uncovered ⇒ the analyzer must say non-exhaustive.

use fast_analysis::guards_exhaustive;
use fast_smt::{CmpOp, Formula, Label, LabelAlg, LabelSig, Sort, Term};
use proptest::prelude::*;

const GRID: std::ops::Range<i64> = -8..9;

fn int_alg() -> LabelAlg {
    LabelAlg::new(LabelSig::single("i", Sort::Int))
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Shallow guard formulas over the single Int field, with constants
/// inside the grid so coverage boundaries land on tested labels.
fn guard() -> impl Strategy<Value = Formula> {
    let atom =
        (cmp_op(), -8i64..9).prop_map(|(op, k)| Formula::cmp(op, Term::field(0), Term::int(k)));
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::not),
        ]
    })
}

fn covered(guards: &[Formula], label: &Label) -> bool {
    guards.iter().any(|g| g.eval(label))
}

proptest! {
    #[test]
    fn analyzer_agrees_with_brute_force(guards in proptest::collection::vec(guard(), 1..5)) {
        let alg = int_alg();
        let (exhaustive, witness) = guards_exhaustive(&alg, &guards);
        let uncovered: Vec<i64> = GRID
            .filter(|&i| !covered(&guards, &Label::single(i)))
            .collect();
        if exhaustive {
            prop_assert!(
                uncovered.is_empty(),
                "analyzer claims exhaustive but {uncovered:?} evade all of {guards:?}"
            );
            prop_assert!(witness.is_none());
        } else {
            let w = witness.expect("non-exhaustive verdict must carry a witness");
            prop_assert!(
                !covered(&guards, &w),
                "witness {w:?} is covered by {guards:?}"
            );
        }
        if !uncovered.is_empty() {
            prop_assert!(
                !exhaustive,
                "label {} evades all of {guards:?} but analyzer claims exhaustive",
                uncovered[0]
            );
        }
    }

    /// A guard set completed with the negation of its disjunction is
    /// always exhaustive, whatever the original guards were.
    #[test]
    fn completed_guard_sets_are_exhaustive(guards in proptest::collection::vec(guard(), 1..4)) {
        let alg = int_alg();
        let rest = Formula::not(
            guards
                .iter()
                .cloned()
                .reduce(|a, b| a.or(b))
                .expect("at least one guard"),
        );
        let mut completed = guards;
        completed.push(rest);
        let (exhaustive, witness) = guards_exhaustive(&alg, &completed);
        prop_assert!(exhaustive, "completed set is not exhaustive: {completed:?}");
        prop_assert!(witness.is_none());
    }
}
