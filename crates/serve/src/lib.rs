//! `fast-serve` — a long-running transduction service.
//!
//! Compiling a Fast program is expensive relative to running it: plans,
//! dispatch tables, and interned trees all warm up over time. This crate
//! keeps that state resident in one process and serves transductions
//! over a tiny dependency-free wire protocol ([`proto`]:
//! length-prefixed JSON frames over TCP), with admission control sized
//! so that overload degrades into explicit 429 responses instead of
//! unbounded queues ([`server`]).
//!
//! ```text
//! fastc build program.fast -o program.fastc
//! fastc serve program.fastc --addr 127.0.0.1:7878
//! ```
//!
//! then, from any client:
//!
//! ```text
//! {"id": 1, "op": "run", "target": "sani", "input": "nil[0]"}
//! ```
//!
//! The server shares one [`fast_rt::BatchMemo`] per transducer across
//! every connection, runs a background telemetry
//! [`Engine`](fast_obs::engine::Engine) for its whole lifetime, and —
//! when started with an SLO spec — continuously evaluates
//! [`fast_obs::slo`] objectives over the windowed view, exposing the
//! violation state through the `stats` operation.

#![warn(missing_docs)]

pub mod proto;
pub mod server;

pub use server::{start, ServeConfig, ServerHandle};

use fast_json::Json;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A minimal blocking client for the wire protocol — enough for tests,
/// benches, and shell one-liners via `fastc`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: i64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Sends one request object and reads one response frame.
    pub fn call(&mut self, request: &Json) -> io::Result<Json> {
        proto::write_json(&mut self.writer, request)?;
        self.read_response()
    }

    /// Sends raw frame bytes (not necessarily valid JSON — used by the
    /// hostile-input tests) and reads one response frame.
    pub fn call_raw(&mut self, frame: &[u8]) -> io::Result<Json> {
        proto::write_frame(&mut self.writer, frame)?;
        self.read_response()
    }

    /// Writes raw bytes *without* framing (to exercise truncated or
    /// corrupt prefixes) and flushes.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response frame and parses it.
    pub fn read_response(&mut self) -> io::Result<Json> {
        match proto::read_frame(&mut self.reader, 64 << 20) {
            Ok(Some(bytes)) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 frame"))?;
                Json::parse(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(proto::FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Convenience: a `run` request against `target`.
    pub fn run(&mut self, target: &str, input: &str) -> io::Result<Json> {
        self.next_id += 1;
        let req = Json::obj([
            ("id", Json::Int(self.next_id)),
            ("op", Json::Str("run".into())),
            ("target", Json::Str(target.into())),
            ("input", Json::Str(input.into())),
        ]);
        self.call(&req)
    }

    /// Convenience: a `stats` request.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.next_id += 1;
        let req = Json::obj([
            ("id", Json::Int(self.next_id)),
            ("op", Json::Str("stats".into())),
        ]);
        self.call(&req)
    }

    /// Drains anything buffered on the read side for `dur` — used after
    /// deliberately corrupt frames where the server may close at any
    /// point.
    pub fn drain_for(&mut self, dur: Duration) {
        let _ = self.reader.get_ref().set_read_timeout(Some(dur));
        let mut sink = [0u8; 1024];
        while matches!(self.reader.read(&mut sink), Ok(n) if n > 0) {}
    }
}
