//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON. The prefix makes message boundaries explicit (no sniffing for
//! newlines inside string literals) and lets the server reject an
//! oversized request **before** allocating a buffer for it: a hostile
//! `0xffff_ffff` prefix costs four bytes of reading, not 4 GiB of
//! memory.
//!
//! Requests are JSON objects:
//!
//! ```json
//! {"id": 1, "op": "run", "target": "sani", "input": "node[0,1,0](...)"}
//! ```
//!
//! `op` is one of `run`, `pipeline`, `check`, `stats`, `ping`.
//! `target`/`input` are required for the first three; `timeout_ms` and
//! `cap` optionally tighten (never loosen) the server's own admission
//! limits. `id` is echoed verbatim into the response so clients may
//! pipeline requests over one connection.
//!
//! Responses carry `"ok": true` plus op-specific fields, or
//! `"ok": false` with a `code` (HTTP-flavored: 400 malformed, 404
//! unknown target, 408 deadline, 413 over budget, 429 shed, 500
//! internal fault, 503 shutting down) and a human-readable `error`.

use fast_json::Json;
use std::io::{self, Read, Write};

/// Bytes in the frame length prefix.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Malformed frame or request (bad UTF-8, bad JSON, missing fields).
pub const CODE_BAD_REQUEST: i64 = 400;
/// The named transducer or pipeline is not in any loaded artifact.
pub const CODE_NOT_FOUND: i64 = 404;
/// The request exceeded its (or the server's) deadline.
pub const CODE_TIMEOUT: i64 = 408;
/// Request frame, output set, or response size over the configured cap.
pub const CODE_TOO_LARGE: i64 = 413;
/// Admission control shed the request (queue full or connection cap).
pub const CODE_SHED: i64 = 429;
/// Contained internal fault (a worker panic, a poisoned lock).
pub const CODE_INTERNAL: i64 = 500;
/// The server is shutting down; the run was cancelled.
pub const CODE_UNAVAILABLE: i64 = 503;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix announced more bytes than the configured
    /// maximum; nothing was allocated.
    TooLarge {
        /// Announced payload length.
        len: u64,
        /// The configured ceiling it exceeded.
        max: usize,
    },
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// An underlying I/O error (includes read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
        }
    }
}

fn eof_is_truncation(e: io::Error) -> FrameError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        FrameError::Truncated
    } else {
        FrameError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); a close mid-frame is [`FrameError::Truncated`].
/// A prefix announcing more than `max_bytes` fails **before** any
/// payload allocation.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; LEN_PREFIX_BYTES];
    // The first byte decides clean-close vs truncation.
    let mut got = 0;
    while got == 0 {
        match r.read(&mut prefix[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    r.read_exact(&mut prefix[1..]).map_err(eof_is_truncation)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge {
            len: len as u64,
            max: max_bytes,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(eof_is_truncation)?;
    Ok(Some(body))
}

/// Writes one frame (prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Serializes `response` and writes it as one frame.
pub fn write_json(w: &mut impl Write, response: &Json) -> io::Result<()> {
    write_frame(w, response.to_string().as_bytes())
}

/// A request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run a transducer on one input tree; return the output trees.
    Run,
    /// Run a pipeline on one input tree; return the output trees.
    Pipeline,
    /// Run a transducer but return only domain membership + output count.
    Check,
    /// Report the server's windowed telemetry and SLO state.
    Stats,
    /// Liveness probe.
    Ping,
}

/// A parsed, shape-validated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client correlation id, echoed verbatim (Null when absent).
    pub id: Json,
    /// The operation.
    pub op: Op,
    /// Transducer or pipeline name (`run`/`pipeline`/`check`).
    pub target: String,
    /// Input tree in `Tree::parse` syntax (`run`/`pipeline`/`check`).
    pub input: String,
    /// Optional per-request deadline; the server clamps it to its own.
    pub timeout_ms: Option<u64>,
    /// Optional per-request output-set budget; clamped likewise.
    pub cap: Option<usize>,
}

/// Parses raw frame bytes into a [`Request`]. On error, returns the
/// best-effort echoed id plus a 400-style message — the connection
/// survives a malformed request.
pub fn parse_request(bytes: &[u8]) -> Result<Request, (Json, String)> {
    let text = std::str::from_utf8(bytes).map_err(|_| (Json::Null, "frame is not UTF-8".into()))?;
    let doc = Json::parse(text).map_err(|e| (Json::Null, format!("bad JSON: {e}")))?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if doc.as_object().is_none() {
        return Err((id, "request must be a JSON object".into()));
    }
    let op = match doc.get("op").and_then(Json::as_str) {
        Some("run") => Op::Run,
        Some("pipeline") => Op::Pipeline,
        Some("check") => Op::Check,
        Some("stats") => Op::Stats,
        Some("ping") => Op::Ping,
        Some(other) => return Err((id, format!("unknown op {other:?}"))),
        None => return Err((id, "missing \"op\" field".into())),
    };
    let field = |name: &str| -> Result<String, (Json, String)> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| (id.clone(), format!("missing string field {name:?}")))
    };
    let (target, input) = match op {
        Op::Run | Op::Pipeline | Op::Check => (field("target")?, field("input")?),
        Op::Stats | Op::Ping => (String::new(), String::new()),
    };
    let uint = |name: &str| -> Result<Option<u64>, (Json, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_int()
                .filter(|n| *n >= 0)
                .map(|n| Some(n as u64))
                .ok_or_else(|| {
                    (
                        id.clone(),
                        format!("{name:?} must be a non-negative integer"),
                    )
                }),
        }
    };
    let timeout_ms = uint("timeout_ms")?;
    let cap = uint("cap")?.map(|n| n as usize);
    Ok(Request {
        id,
        op,
        target,
        input,
        timeout_ms,
        cap,
    })
}

/// An `"ok": true` response: `{"id", "ok": true, ...fields}`.
pub fn ok_response(id: &Json, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("id", id.clone()), ("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// An `"ok": false` response with a code and message.
pub fn error_response(id: &Json, code: i64, error: impl Into<String>) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("code", Json::Int(code)),
        ("error", Json::Str(error.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        let mut r = &buf[..];
        let body = read_frame(&mut r, 1024).unwrap().unwrap();
        assert_eq!(body, b"{\"op\":\"ping\"}");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        match read_frame(&mut &buf[..], 64).unwrap_err() {
            FrameError::TooLarge { len, max } => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_reported() {
        // Mid-prefix.
        assert!(matches!(
            read_frame(&mut &[5u8, 0][..], 64),
            Err(FrameError::Truncated)
        ));
        // Mid-payload.
        let mut buf = 10u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"only4");
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_parsing_validates_shape() {
        assert!(parse_request(b"\xff\xfe").is_err());
        assert!(parse_request(b"[1,2]").is_err());
        assert!(parse_request(b"{\"op\":\"fly\"}").is_err());
        assert!(parse_request(b"{\"op\":\"run\"}").is_err());
        let (id, msg) = parse_request(b"{\"id\":7,\"op\":\"run\",\"target\":\"t\"}").unwrap_err();
        assert_eq!(id, Json::Int(7));
        assert!(msg.contains("input"));
        let req = parse_request(b"{\"id\":7,\"op\":\"run\",\"target\":\"t\",\"input\":\"nil[0]\"}")
            .unwrap();
        assert_eq!(req.op, Op::Run);
        assert_eq!(req.target, "t");
        assert!(
            parse_request(b"{\"op\":\"run\",\"target\":\"t\",\"input\":\"x\",\"cap\":-1}").is_err()
        );
    }
}
