//! The server proper: acceptor, bounded work queue, executors.
//!
//! Admission control has three gates, hit in order, each shedding load
//! *before* the expensive part behind it:
//!
//! 1. **Connection cap** — an accept over [`ServeConfig::max_connections`]
//!    is answered with one 429 frame and closed (`serve.conn_rejected`).
//! 2. **Frame cap** — a length prefix over
//!    [`ServeConfig::max_request_bytes`] is rejected before any payload
//!    allocation (413). Recursion is bounded layer by layer: the JSON
//!    parser enforces its own hard nesting ceiling
//!    ([`fast_json::MAX_PARSE_DEPTH`]), and a nesting-depth scan of the
//!    input tree text ([`ServeConfig::max_input_depth`]) bounds what the
//!    tree parser and evaluator will recurse. The depth gates are what
//!    make a `catch_unwind` story honest: a stack overflow is an abort,
//!    not a panic, so it must be prevented, not contained.
//! 3. **Work queue** — `run`/`pipeline`/`check` requests go through a
//!    bounded queue; when it is full the request is shed with a 429
//!    (`serve.shed`) instead of queuing unbounded latency. `stats` and
//!    `ping` are answered inline and are never shed — the telemetry
//!    plane must stay responsive exactly when the data plane is
//!    saturated.
//!
//! Admitted requests run under the runtime's own guard rails: a
//! per-request deadline (clamped to the server's), an output-set budget,
//! the process-wide cancellation token (tripped on shutdown), and
//! per-transducer [`BatchMemo`]s shared across all connections — a
//! repeated subtree is transduced once per process, not once per
//! request.

use crate::proto::{self, FrameError, Op, Request};
use fast_core::TransducerError;
use fast_json::Json;
use fast_obs::engine::Engine;
use fast_obs::slo::{SloSpec, SloViolation};
use fast_rt::{Artifact, BatchMemo, RunOptions};
use fast_trees::Tree;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Executor threads get a deep stack: the evaluator recurses once per
/// tree level, and the depth gate ([`ServeConfig::max_input_depth`])
/// is calibrated against this, not against the platform default.
const EXECUTOR_STACK_BYTES: usize = 16 << 20;

/// Server tuning. [`ServeConfig::default`] is sized for a small
/// single-process deployment; every limit is a ceiling that per-request
/// `timeout_ms`/`cap` fields may tighten but never exceed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads (0 = one per core, capped at 8).
    pub workers: usize,
    /// Bounded work-queue depth; a full queue sheds with 429.
    pub queue_depth: usize,
    /// Concurrent connections; excess accepts are rejected with 429.
    pub max_connections: usize,
    /// Per-request wall-clock ceiling.
    pub timeout: Duration,
    /// Per-request output-set budget ceiling.
    pub cap: usize,
    /// Largest accepted request frame, in bytes.
    pub max_request_bytes: usize,
    /// Largest serialized output set returned, in bytes.
    pub max_response_bytes: usize,
    /// Maximum input-tree nesting depth (guards parser/evaluator
    /// recursion — see [`EXECUTOR_STACK_BYTES`]).
    pub max_input_depth: usize,
    /// Per-connection read *and* write timeout (`None` = wait forever):
    /// closes connections idle past it, and connections whose peer
    /// stops draining responses.
    pub idle_timeout: Option<Duration>,
    /// Capacity of each shared per-transducer [`BatchMemo`].
    pub memo_capacity: usize,
    /// Telemetry sampling interval (window width).
    pub engine_interval: Duration,
    /// Telemetry window-ring capacity.
    pub engine_capacity: usize,
    /// Windows merged into each `stats` / SLO evaluation.
    pub stats_windows: usize,
    /// Service-level objectives, evaluated continuously over the
    /// windowed view when set.
    pub slo: Option<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            max_connections: 64,
            timeout: Duration::from_secs(10),
            cap: RunOptions::default().cap,
            max_request_bytes: 4 << 20,
            max_response_bytes: 16 << 20,
            max_input_depth: 512,
            idle_timeout: Some(Duration::from_secs(60)),
            memo_capacity: RunOptions::default().memo_capacity,
            engine_interval: Duration::from_millis(500),
            engine_capacity: 240,
            stats_windows: 20,
            slo: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetKind {
    Transducer,
    Pipeline,
}

/// Where a published name points.
struct TargetEntry {
    kind: TargetKind,
    artifact: usize,
}

/// Continuous SLO evaluation state, updated by the watcher thread.
#[derive(Debug, Default, Clone)]
struct SloState {
    /// Violations in the most recent evaluation (empty = healthy).
    current: Vec<SloViolation>,
    /// Evaluations performed.
    checks: u64,
    /// Evaluations that found at least one violation.
    violated_checks: u64,
}

struct Shared {
    cfg: ServeConfig,
    artifacts: Vec<Artifact>,
    targets: HashMap<String, TargetEntry>,
    /// One shared memo per *transducer* target (pipelines build their
    /// own per-segment memos per run).
    memos: HashMap<String, BatchMemo>,
    engine: Engine,
    slo_state: Mutex<SloState>,
    stop: AtomicBool,
    /// Cooperative cancellation token threaded into every run; tripped
    /// on shutdown so in-flight items fail fast with `Cancelled`.
    cancel: Arc<AtomicBool>,
    conns: AtomicUsize,
    started: Instant,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Job {
    req: Request,
    reply: SyncSender<Json>,
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the acceptor, trips the
/// cancellation token, and joins the service threads it can join;
/// handler threads for connections the *client* still holds open exit
/// when those connections close or time out.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    watcher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` request port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels in-flight runs, joins the acceptor and
    /// SLO watcher.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks the calling thread for the server's lifetime (until the
    /// process is killed) — the foreground `fastc serve` mode.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cancel.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Starts a server over `artifacts` on `addr` (e.g. `"127.0.0.1:7878"`,
/// port 0 for ephemeral). Every transducer and pipeline in every
/// artifact becomes a published target; on a name collision the first
/// artifact wins (transducers before pipelines within one artifact).
pub fn start(artifacts: Vec<Artifact>, addr: &str, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;

    let mut targets = HashMap::new();
    let mut memos = HashMap::new();
    for (i, art) in artifacts.iter().enumerate() {
        for name in art.transducer_names() {
            targets.entry(name.to_owned()).or_insert(TargetEntry {
                kind: TargetKind::Transducer,
                artifact: i,
            });
            memos
                .entry(name.to_owned())
                .or_insert_with(|| BatchMemo::new(cfg.memo_capacity));
        }
        for name in art.pipeline_names() {
            targets.entry(name.to_owned()).or_insert(TargetEntry {
                kind: TargetKind::Pipeline,
                artifact: i,
            });
        }
    }

    let engine = Engine::start(cfg.engine_interval, cfg.engine_capacity);
    let shared = Arc::new(Shared {
        cfg,
        artifacts,
        targets,
        memos,
        engine,
        slo_state: Mutex::new(SloState::default()),
        stop: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        conns: AtomicUsize::new(0),
        started: Instant::now(),
    });

    // Executors: they own the receive side of the bounded work queue
    // and exit when every sender (acceptor + connection handlers) is
    // gone.
    let (jobs_tx, jobs_rx) = sync_channel::<Job>(shared.cfg.queue_depth.max(1));
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let n_workers = if shared.cfg.workers > 0 {
        shared.cfg.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    };
    let mut executors = 0usize;
    let mut spawn_err = None;
    for w in 0..n_workers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&jobs_rx);
        let builder = std::thread::Builder::new()
            .name(format!("fast-serve-exec-{w}"))
            .stack_size(EXECUTOR_STACK_BYTES);
        // A refused spawn degrades parallelism, not correctness — the
        // executors that did start drain the same queue. But at least
        // one must start: with zero executors, admitted jobs would
        // enqueue and never run, and their connection handlers would
        // block in `reply_rx.recv()` forever (the job senders stay
        // alive, so the channel never disconnects).
        match builder.spawn(move || executor_loop(&shared, &rx)) {
            Ok(_) => executors += 1,
            Err(e) => spawn_err = Some(e),
        }
    }
    if executors == 0 {
        return Err(
            spawn_err.unwrap_or_else(|| io::Error::other("no executor thread could be started"))
        );
    }

    // SLO watcher: evaluates the windowed view each interval.
    let watcher = shared.cfg.slo.as_ref().map(|_| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || watcher_loop(&shared))
    });

    // Acceptor.
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || acceptor_loop(&shared, &listener, &jobs_tx))
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor: Some(acceptor),
        watcher: Some(watcher.unwrap_or_else(|| std::thread::spawn(|| {}))),
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener, jobs_tx: &SyncSender<Job>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE under fd exhaustion —
                // i.e. exactly when overloaded) must not busy-spin the
                // acceptor at 100% CPU; back off briefly before retrying.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Connection cap: one 429 frame, then close.
        let live = shared.conns.fetch_add(1, Ordering::SeqCst);
        if live >= shared.cfg.max_connections {
            shared.conns.fetch_sub(1, Ordering::SeqCst);
            fast_obs::count!("serve.conn_rejected");
            // This write runs on the acceptor thread: bound it so a
            // peer that connects and never reads cannot stall accepts.
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut w = BufWriter::new(stream);
            let _ = proto::write_json(
                &mut w,
                &proto::error_response(
                    &Json::Null,
                    proto::CODE_SHED,
                    "connection limit reached, retry later",
                ),
            );
            continue;
        }
        fast_obs::gauge("serve.connections").set(shared.conns.load(Ordering::SeqCst) as u64);
        let conn_shared = Arc::clone(shared);
        let jobs_tx = jobs_tx.clone();
        let spawned = std::thread::Builder::new()
            .name("fast-serve-conn".into())
            .spawn(move || {
                handle_conn(&conn_shared, &jobs_tx, stream);
                conn_shared.conns.fetch_sub(1, Ordering::SeqCst);
                fast_obs::gauge("serve.connections")
                    .set(conn_shared.conns.load(Ordering::SeqCst) as u64);
            });
        if spawned.is_err() {
            // Could not spawn a handler: treat like an over-cap accept.
            shared.conns.fetch_sub(1, Ordering::SeqCst);
            fast_obs::count!("serve.conn_rejected");
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, jobs_tx: &SyncSender<Job>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if let Some(t) = shared.cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
        // Also bound writes: a client that pipelines requests but never
        // drains responses would otherwise block this handler in
        // `write_all` forever (the read timeout cannot fire while
        // blocked on write), wedging a connection slot and a thread.
        let _ = stream.set_write_timeout(Some(t));
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = proto::write_json(
                &mut writer,
                &proto::error_response(&Json::Null, proto::CODE_UNAVAILABLE, "shutting down"),
            );
            return;
        }
        match proto::read_frame(&mut reader, shared.cfg.max_request_bytes) {
            Ok(None) => return,
            Ok(Some(bytes)) => {
                let resp = dispatch(shared, jobs_tx, &bytes);
                if proto::write_json(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::TooLarge { len, max }) => {
                // The announced payload was never read, so the stream
                // position is unknown — answer once, then close.
                fast_obs::count!("serve.errors");
                let _ = proto::write_json(
                    &mut writer,
                    &proto::error_response(
                        &Json::Null,
                        proto::CODE_TOO_LARGE,
                        format!("request frame of {len} bytes exceeds the {max}-byte limit"),
                    ),
                );
                return;
            }
            Err(FrameError::Truncated | FrameError::Io(_)) => return,
        }
    }
}

/// Routes one raw frame: parse, answer `ping`/`stats` inline, enqueue
/// everything else through the bounded work queue.
fn dispatch(shared: &Arc<Shared>, jobs_tx: &SyncSender<Job>, bytes: &[u8]) -> Json {
    let req = match proto::parse_request(bytes) {
        Ok(r) => r,
        Err((id, msg)) => {
            fast_obs::count!("serve.errors");
            return proto::error_response(&id, proto::CODE_BAD_REQUEST, msg);
        }
    };
    match req.op {
        Op::Ping => proto::ok_response(
            &req.id,
            vec![("op", Json::Str("ping".into())), ("pong", Json::Bool(true))],
        ),
        // The telemetry plane is never shed: answered inline, no queue.
        Op::Stats => stats_response(shared, &req.id),
        Op::Run | Op::Pipeline | Op::Check => {
            let id = req.id.clone();
            let (reply_tx, reply_rx) = sync_channel(1);
            match jobs_tx.try_send(Job {
                req,
                reply: reply_tx,
            }) {
                Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                    fast_obs::count!("serve.errors");
                    proto::error_response(&id, proto::CODE_INTERNAL, "executor dropped the request")
                }),
                Err(TrySendError::Full(_)) => {
                    fast_obs::count!("serve.shed");
                    proto::error_response(&id, proto::CODE_SHED, "work queue full, retry later")
                }
                Err(TrySendError::Disconnected(_)) => {
                    proto::error_response(&id, proto::CODE_UNAVAILABLE, "server is shutting down")
                }
            }
        }
    }
}

fn executor_loop(shared: &Arc<Shared>, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only for the dequeue, not the execution.
        let job = match lock_unpoisoned(rx).recv() {
            Ok(j) => j,
            Err(_) => return,
        };
        fast_obs::count!("serve.requests");
        let start = Instant::now();
        let resp = execute(shared, &job.req);
        fast_obs::histogram("serve.request").record_ns(start.elapsed().as_nanos() as u64);
        if resp.get("ok") == Some(&Json::Bool(false)) {
            fast_obs::count!("serve.errors");
        }
        // A vanished requester (connection handler gone) is fine.
        let _ = job.reply.send(resp);
    }
}

/// Maximum `(`-nesting of the input text — an over-approximation of the
/// tree depth (parens inside string labels count), which errs on the
/// side of rejection.
fn nesting_depth(s: &str) -> usize {
    let (mut depth, mut max) = (0usize, 0usize);
    for b in s.bytes() {
        match b {
            b'(' => {
                depth += 1;
                max = max.max(depth);
            }
            b')' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

fn run_error_response(id: &Json, e: &TransducerError) -> Json {
    let code = match e {
        TransducerError::Timeout { .. } => proto::CODE_TIMEOUT,
        TransducerError::Budget { .. } => proto::CODE_TOO_LARGE,
        TransducerError::Cancelled => proto::CODE_UNAVAILABLE,
        TransducerError::Automata(_)
        | TransducerError::Internal { .. }
        | TransducerError::InexactComposition { .. } => proto::CODE_INTERNAL,
    };
    proto::error_response(id, code, e.to_string())
}

/// Executes an admitted `run`/`pipeline`/`check` request.
fn execute(shared: &Shared, req: &Request) -> Json {
    let Some(entry) = shared.targets.get(&req.target) else {
        return proto::error_response(
            &req.id,
            proto::CODE_NOT_FOUND,
            format!("unknown transducer or pipeline {:?}", req.target),
        );
    };
    let art = &shared.artifacts[entry.artifact];
    let ty = match entry.kind {
        TargetKind::Transducer => art.transducer_type(&req.target),
        TargetKind::Pipeline => art.pipeline_type(&req.target),
    };
    let Some(ty) = ty else {
        return proto::error_response(
            &req.id,
            proto::CODE_INTERNAL,
            "artifact is missing the target's input type",
        );
    };

    let depth = nesting_depth(&req.input);
    if depth > shared.cfg.max_input_depth {
        return proto::error_response(
            &req.id,
            proto::CODE_TOO_LARGE,
            format!(
                "input nesting depth {depth} exceeds the limit of {}",
                shared.cfg.max_input_depth
            ),
        );
    }
    let tree = match Tree::parse(ty, &req.input) {
        Ok(t) => t,
        Err(msg) => {
            return proto::error_response(
                &req.id,
                proto::CODE_BAD_REQUEST,
                format!("input does not parse: {msg}"),
            )
        }
    };

    // Per-request limits tighten the server's ceilings, never exceed
    // them. Runs are single-threaded: parallelism comes from the
    // executor pool, not nested worker pools per request.
    let timeout = req
        .timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.cfg.timeout)
        .min(shared.cfg.timeout);
    let opts = RunOptions {
        cap: req.cap.unwrap_or(shared.cfg.cap).min(shared.cfg.cap).max(1),
        timeout: Some(timeout),
        workers: 1,
        cancel: Some(Arc::clone(&shared.cancel)),
        ..RunOptions::default()
    };

    let result = match entry.kind {
        TargetKind::Transducer => {
            let plan = art
                .transducer(&req.target)
                .expect("target map points at a present transducer");
            let memo = &shared.memos[&req.target];
            let (mut results, _) = plan.run_batch_shared(std::slice::from_ref(&tree), &opts, memo);
            results.remove(0)
        }
        TargetKind::Pipeline => {
            let pipe = art
                .pipeline(&req.target)
                .expect("target map points at a present pipeline");
            let (mut results, _) = pipe.run_batch_with(std::slice::from_ref(&tree), &opts);
            results.remove(0)
        }
    };

    let outputs = match result {
        Ok(outs) => outs,
        Err(e) => return run_error_response(&req.id, &e),
    };

    if req.op == Op::Check {
        return proto::ok_response(
            &req.id,
            vec![
                ("op", Json::Str("check".into())),
                ("target", Json::Str(req.target.clone())),
                ("in_domain", Json::Bool(!outputs.is_empty())),
                ("outputs", Json::Int(outputs.len() as i64)),
            ],
        );
    }

    // Serialize under the response-size cap: over it, fail the request
    // rather than truncate the output set. Rendering uses the target's
    // tree type, so responses round-trip through `Tree::parse`.
    let mut rendered = Vec::with_capacity(outputs.len());
    let mut total = 0usize;
    for t in &outputs {
        let s = t.display(ty).to_string();
        total += s.len();
        if total > shared.cfg.max_response_bytes {
            return proto::error_response(
                &req.id,
                proto::CODE_TOO_LARGE,
                format!(
                    "serialized output exceeds the {}-byte response limit",
                    shared.cfg.max_response_bytes
                ),
            );
        }
        rendered.push(Json::Str(s));
    }
    proto::ok_response(
        &req.id,
        vec![
            (
                "op",
                Json::Str(match req.op {
                    Op::Pipeline => "pipeline".into(),
                    _ => "run".into(),
                }),
            ),
            ("target", Json::Str(req.target.clone())),
            ("count", Json::Int(rendered.len() as i64)),
            ("outputs", Json::Array(rendered)),
        ],
    )
}

fn watcher_loop(shared: &Arc<Shared>) {
    let Some(spec) = shared.cfg.slo.as_ref() else {
        return;
    };
    let step = Duration::from_millis(25);
    let mut next = Instant::now() + shared.cfg.engine_interval;
    while !shared.stop.load(Ordering::SeqCst) {
        // Sleep in short steps so shutdown is prompt.
        if Instant::now() < next {
            std::thread::sleep(step.min(shared.cfg.engine_interval));
            continue;
        }
        next = Instant::now() + shared.cfg.engine_interval;
        let view = shared
            .engine
            .with_sampler(|s| s.view(shared.cfg.stats_windows));
        let violations = spec.evaluate(&view);
        let mut state = lock_unpoisoned(&shared.slo_state);
        state.checks += 1;
        if !violations.is_empty() {
            state.violated_checks += 1;
            fast_obs::count!("serve.slo_violations");
        }
        state.current = violations;
    }
}

fn quantile_json(view: &fast_obs::engine::WindowView, name: &str, q: f64) -> Json {
    view.quantile_ns(name, q)
        .map_or(Json::Null, |ns| Json::Int(ns as i64))
}

/// Builds the `stats` response from the windowed view, the cumulative
/// snapshot, and the SLO watcher's state.
fn stats_response(shared: &Shared, id: &Json) -> Json {
    let view = shared
        .engine
        .with_sampler(|s| s.view(shared.cfg.stats_windows));
    let cum = fast_obs::snapshot();
    let slo = lock_unpoisoned(&shared.slo_state).clone();
    let exemplars = view
        .snap
        .exemplars
        .get("rt.item")
        .map(|v| v.iter().map(fast_obs::Exemplar::to_json).collect())
        .unwrap_or_default();
    proto::ok_response(
        id,
        vec![
            ("op", Json::Str("stats".into())),
            (
                "uptime_ms",
                Json::Int(shared.started.elapsed().as_millis() as i64),
            ),
            ("windows", Json::Int(view.windows as i64)),
            ("span_ms", Json::Int(view.span_ms as i64)),
            (
                "rates",
                Json::obj([
                    ("requests_per_s", Json::Float(view.rate("serve.requests"))),
                    ("items_per_s", Json::Float(view.rate("rt.batch_items"))),
                    ("errors_per_s", Json::Float(view.rate("serve.errors"))),
                    ("shed_per_s", Json::Float(view.rate("serve.shed"))),
                ]),
            ),
            (
                "latency_ns",
                Json::obj([
                    ("request_p50", quantile_json(&view, "serve.request", 0.50)),
                    ("request_p99", quantile_json(&view, "serve.request", 0.99)),
                    (
                        "request_max",
                        view.max_ns("serve.request")
                            .map_or(Json::Null, |ns| Json::Int(ns as i64)),
                    ),
                    ("item_p50", quantile_json(&view, "rt.item", 0.50)),
                    ("item_p99", quantile_json(&view, "rt.item", 0.99)),
                ]),
            ),
            (
                "memo_hit_rate",
                view.hit_rate("rt.memo_hits", "rt.memo_misses")
                    .map_or(Json::Null, Json::Float),
            ),
            (
                "gauges",
                Json::obj([
                    (
                        "connections",
                        Json::Int(cum.gauge("serve.connections") as i64),
                    ),
                    (
                        "intern_resident_bytes",
                        Json::Int(cum.gauge("intern.resident_bytes") as i64),
                    ),
                    (
                        "memo_entries",
                        Json::Int(cum.gauge("rt.memo.entries") as i64),
                    ),
                    ("memo_bytes", Json::Int(cum.gauge("rt.memo.bytes") as i64)),
                ]),
            ),
            (
                "totals",
                Json::obj([
                    ("requests", Json::Int(cum.get("serve.requests") as i64)),
                    ("shed", Json::Int(cum.get("serve.shed") as i64)),
                    ("errors", Json::Int(cum.get("serve.errors") as i64)),
                    (
                        "conn_rejected",
                        Json::Int(cum.get("serve.conn_rejected") as i64),
                    ),
                    ("timeouts", Json::Int(cum.get("rt.timeouts") as i64)),
                    ("item_errors", Json::Int(cum.get("rt.item_errors") as i64)),
                ]),
            ),
            ("exemplars", Json::Array(exemplars)),
            (
                "slo",
                Json::obj([
                    ("configured", Json::Bool(shared.cfg.slo.is_some())),
                    ("violating", Json::Bool(!slo.current.is_empty())),
                    (
                        "violations",
                        Json::Array(slo.current.iter().map(SloViolation::to_json).collect()),
                    ),
                    ("checks", Json::Int(slo.checks as i64)),
                    ("violated_checks", Json::Int(slo.violated_checks as i64)),
                ]),
            ),
        ],
    )
}
