//! End-to-end tests against a real server on an ephemeral port: every
//! operation over a fast-lang-compiled artifact, plus the admission
//! limits a *well-formed* client can hit (deadline, budget, unknown
//! target). Hostile wire-level input lives in `hostile_protocol.rs`.

use fast_json::Json;
use fast_rt::{Artifact, ArtifactBuilder};
use fast_serve::{Client, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = r#"
    type BT[i: Int] { L(0), N(2) }
    trans inc: BT -> BT {
      L() to (L [i + 1])
    | N(x, y) to (N [i + 1] (inc x) (inc y))
    }
    trans flip: BT -> BT {
      L() to (L [0 - i])
    | N(x, y) to (N [0 - i] (flip x) (flip y))
    }
"#;

fn artifact() -> Artifact {
    let c = fast_lang::compile(SRC).expect("fixture program compiles");
    let mut b = ArtifactBuilder::new();
    for name in c.transducer_names() {
        b.add_transducer(name, c.transducer(name).unwrap());
    }
    let inc = Arc::new(c.transducer("inc").unwrap().clone());
    b.add_pipeline(
        "inc,inc",
        &["inc".to_string(), "inc".to_string()],
        &[Arc::clone(&inc), inc],
    );
    b.build()
}

fn start_server(cfg: ServeConfig) -> fast_serve::ServerHandle {
    fast_serve::start(vec![artifact()], "127.0.0.1:0", cfg).expect("server starts")
}

#[test]
fn run_check_pipeline_stats_roundtrip() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // run: one deterministic output, rendered so it re-parses.
    let resp = client.run("inc", "N[1](L[2], L[3])").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    let outs = resp.get("outputs").and_then(Json::as_array).unwrap();
    assert_eq!(outs.len(), 1);
    assert_eq!(outs[0].as_str().unwrap(), "N[2](L[3], L[4])");

    // The id is echoed verbatim, including non-integer ids.
    let resp = client
        .call(&Json::obj([
            ("id", Json::Str("abc".into())),
            ("op", Json::Str("run".into())),
            ("target", Json::Str("flip".into())),
            ("input", Json::Str("L[5]".into())),
        ]))
        .unwrap();
    assert_eq!(resp.get("id"), Some(&Json::Str("abc".into())));
    let outs = resp.get("outputs").and_then(Json::as_array).unwrap();
    assert_eq!(outs[0].as_str().unwrap(), "L[-5]");

    // pipeline: inc twice.
    let resp = client
        .call(&Json::obj([
            ("id", Json::Int(3)),
            ("op", Json::Str("pipeline".into())),
            ("target", Json::Str("inc,inc".into())),
            ("input", Json::Str("L[0]".into())),
        ]))
        .unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    let outs = resp.get("outputs").and_then(Json::as_array).unwrap();
    assert_eq!(outs[0].as_str().unwrap(), "L[2]");

    // check: domain membership and output count, no serialized trees.
    let resp = client
        .call(&Json::obj([
            ("id", Json::Int(4)),
            ("op", Json::Str("check".into())),
            ("target", Json::Str("inc".into())),
            ("input", Json::Str("L[9]".into())),
        ]))
        .unwrap();
    assert_eq!(resp.get("in_domain"), Some(&Json::Bool(true)));
    assert_eq!(resp.get("outputs"), Some(&Json::Int(1)));

    // ping.
    let resp = client
        .call(&Json::obj([("op", Json::Str("ping".into()))]))
        .unwrap();
    assert_eq!(resp.get("pong"), Some(&Json::Bool(true)));

    // stats: present and shaped, with the requests served so far in the
    // cumulative totals (the counter registry is process-global, so
    // other tests may add to it — we only assert a lower bound).
    let resp = client.stats().unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert!(
        resp.get("totals")
            .and_then(|t| t.get("requests"))
            .and_then(Json::as_int)
            >= Some(4)
    );
    assert!(resp.get("rates").is_some());
    assert!(resp.get("latency_ns").is_some());
    assert_eq!(
        resp.get("slo").and_then(|s| s.get("configured")),
        Some(&Json::Bool(false))
    );

    server.shutdown();
}

#[test]
fn unknown_target_is_404_and_connection_survives() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.run("nope", "L[0]").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.get("code"), Some(&Json::Int(404)));
    // Same connection still works.
    let resp = client.run("inc", "L[0]").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
}

#[test]
fn unparseable_input_is_400_and_connection_survives() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.run("inc", "N[1](L[2]").unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(400)), "{resp}");
    let resp = client.run("inc", "L[1]").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
}

#[test]
fn per_request_deadline_is_honored() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    // A large bushy input with *distinct* labels (so the memo cannot
    // collapse it) and a 0 ms deadline: the cooperative check trips
    // before the run finishes.
    fn bushy(depth: u32, next: &mut i64) -> String {
        let label = *next;
        *next += 1;
        if depth == 0 {
            format!("L[{label}]")
        } else {
            format!(
                "N[{label}]({}, {})",
                bushy(depth - 1, next),
                bushy(depth - 1, next)
            )
        }
    }
    let mut next = 0;
    let input = bushy(11, &mut next);
    let resp = client
        .call(&Json::obj([
            ("id", Json::Int(1)),
            ("op", Json::Str("run".into())),
            ("target", Json::Str("inc".into())),
            ("input", Json::Str(input)),
            ("timeout_ms", Json::Int(0)),
        ]))
        .unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(408)), "{resp}");
    server.shutdown();
}

#[test]
fn input_depth_gate_rejects_deep_nesting() {
    let server = start_server(ServeConfig {
        max_input_depth: 16,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let mut input = String::from("L[0]");
    for _ in 0..32 {
        input = format!("N[0]({input}, L[1])");
    }
    let resp = client.run("inc", &input).unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(413)), "{resp}");
    server.shutdown();
}

#[test]
fn response_size_cap_fails_rather_than_truncates() {
    let server = start_server(ServeConfig {
        max_response_bytes: 32,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let mut input = String::from("L[0]");
    for _ in 0..4 {
        input = format!("N[0]({input}, {input})");
    }
    let resp = client.run("inc", &input).unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(413)), "{resp}");
    server.shutdown();
}

#[test]
fn shutdown_kills_promptly_and_refuses_new_work() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.run("inc", "L[0]").unwrap().get("ok") == Some(&Json::Bool(true)));
    server.shutdown();
    // New connections are refused or immediately closed; either way no
    // successful run can be had.
    std::thread::sleep(Duration::from_millis(20));
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            let r = c.run("inc", "L[0]");
            assert!(
                match &r {
                    Err(_) => true,
                    Ok(resp) => resp.get("ok") == Some(&Json::Bool(false)),
                },
                "post-shutdown run unexpectedly succeeded: {r:?}"
            );
        }
    }
}
