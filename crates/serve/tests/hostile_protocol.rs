//! Wire-level hostile-input tests: every malformed, oversized, or
//! flooding client must get a clean JSON error (or a closed connection)
//! — never a panic, a wedged server, or an unbounded allocation. Each
//! test finishes by proving the server still serves a well-formed
//! request.

mod common;

use fast_json::Json;
use fast_serve::{proto, Client, ServeConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start(cfg: ServeConfig) -> fast_serve::ServerHandle {
    fast_serve::start(vec![common::artifact()], "127.0.0.1:0", cfg).expect("server starts")
}

fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    let resp = client.run("inc", "L[1]").unwrap();
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "server no longer serves well-formed requests: {resp}"
    );
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let server = start(ServeConfig {
        max_request_bytes: 1024,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    // Announce 4 GiB; send nothing further. The server must answer 413
    // from the prefix alone and close.
    client.send_bytes(&u32::MAX.to_le_bytes()).unwrap();
    let resp = client.read_response().unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(proto::CODE_TOO_LARGE)));
    assert_still_serving(server.addr());
}

#[test]
fn truncated_frames_close_the_connection_cleanly() {
    let server = start(ServeConfig::default());
    // Mid-prefix close.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&[9u8, 0]).unwrap();
    }
    // Mid-payload close: promise 100 bytes, deliver 3.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(b"abc").unwrap();
    }
    assert_still_serving(server.addr());
}

#[test]
fn malformed_payloads_get_400_and_the_connection_survives() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    for payload in [
        &b"\xff\xfe\x00garbage"[..], // not UTF-8
        b"{\"op\": \"run\",",        // not JSON
        b"",                         // empty frame
        b"[1, 2, 3]",                // not an object
        b"{\"op\": \"explode\"}",    // unknown op
        b"{\"op\": \"run\"}",        // missing fields
        b"{\"op\": \"run\", \"target\": \"inc\", \"input\": \"L[0]\", \"cap\": -3}",
    ] {
        let resp = client.call_raw(payload).unwrap();
        assert_eq!(
            resp.get("code"),
            Some(&Json::Int(proto::CODE_BAD_REQUEST)),
            "payload {payload:?} → {resp}"
        );
    }
    // The very same connection still serves a good request.
    let resp = client.run("inc", "L[1]").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
}

/// A frame of hundreds of thousands of `[`s must come back as a 400 —
/// the JSON parser's own depth ceiling, not a stack overflow on the
/// connection-handler thread (which runs on the platform-default stack;
/// an overflow there aborts the whole process).
#[test]
fn deeply_nested_json_bomb_gets_400_not_a_crash() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    for bomb in [
        "[".repeat(500_000),                                            // bare array bomb
        format!("{{\"op\":\"run\",\"target\":{}", "[".repeat(500_000)), // nested in a field
        "{\"a\":".repeat(200_000),                                      // object bomb
    ] {
        let resp = client.call_raw(bomb.as_bytes()).unwrap();
        assert_eq!(
            resp.get("code"),
            Some(&Json::Int(proto::CODE_BAD_REQUEST)),
            "{resp}"
        );
    }
    // Same connection and server both still serve.
    let resp = client.run("inc", "L[1]").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn unknown_transducer_is_a_clean_404() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.run("no-such-transducer", "L[0]").unwrap();
    assert_eq!(resp.get("code"), Some(&Json::Int(proto::CODE_NOT_FOUND)));
    assert_still_serving(server.addr());
}

#[test]
fn connections_past_the_cap_get_429_frames() {
    let server = start(ServeConfig {
        max_connections: 2,
        ..ServeConfig::default()
    });
    // Two live connections, proven established by a round trip each.
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    assert!(a.run("inc", "L[1]").unwrap().get("ok") == Some(&Json::Bool(true)));
    assert!(b.run("inc", "L[2]").unwrap().get("ok") == Some(&Json::Bool(true)));
    // The third is rejected with one 429 frame, then closed.
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(
        resp.get("code"),
        Some(&Json::Int(proto::CODE_SHED)),
        "{resp}"
    );
    // Closing a live connection frees the slot.
    drop(a);
    std::thread::sleep(Duration::from_millis(50));
    assert_still_serving(server.addr());
    server.shutdown();
}

/// Floods a 1-worker, depth-1 queue with concurrent slow requests: the
/// queue must shed with 429s rather than buffer unbounded latency, and
/// the requests it admitted must still succeed.
#[test]
fn full_work_queue_sheds_with_429() {
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Distinct labels per request: the shared memo cannot
                // short-circuit the work.
                let input = common::bushy_input(13, i * 1_000_000);
                let resp = client.run("inc", &input).unwrap();
                match resp.get("code").and_then(Json::as_int) {
                    None => {
                        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
                        "ok"
                    }
                    Some(proto::CODE_SHED) => "shed",
                    Some(other) => panic!("unexpected code {other}: {resp}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<&str> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    assert!(ok >= 1, "no admitted request succeeded: {outcomes:?}");
    // All eight were concurrent against capacity 2 (1 running + 1
    // queued); sheds are expected. If the machine is so slow/fast that
    // none occurred the assertion below would be flaky, so we assert
    // the accounting instead: ok + shed covers every request.
    assert_eq!(outcomes.len(), 8);
    assert_still_serving(addr);
    server.shutdown();
}

/// Stats must stay available while the data plane is saturated — the
/// telemetry plane is never shed.
#[test]
fn stats_is_served_while_the_queue_is_full() {
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let input = common::bushy_input(13, 100_000_000 + i * 1_000_000);
                let _ = client.run("inc", &input);
            })
        })
        .collect();
    // While they churn, stats answers from a fresh connection.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.stats().unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    for w in workers {
        w.join().unwrap();
    }
    server.shutdown();
}
