//! Shared fixture for the server integration tests: a tiny fast-lang
//! program compiled into an in-memory artifact.

use fast_rt::{Artifact, ArtifactBuilder};
use std::sync::Arc;

const SRC: &str = r#"
    type BT[i: Int] { L(0), N(2) }
    trans inc: BT -> BT {
      L() to (L [i + 1])
    | N(x, y) to (N [i + 1] (inc x) (inc y))
    }
"#;

pub fn artifact() -> Artifact {
    let c = fast_lang::compile(SRC).expect("fixture program compiles");
    let mut b = ArtifactBuilder::new();
    for name in c.transducer_names() {
        b.add_transducer(name, c.transducer(name).unwrap());
    }
    let inc = Arc::new(c.transducer("inc").unwrap().clone());
    b.add_pipeline(
        "inc,inc",
        &["inc".to_string(), "inc".to_string()],
        &[Arc::clone(&inc), inc],
    );
    b.build()
}

/// A complete binary tree in `Tree::parse` syntax with distinct labels,
/// so the shared memo cannot collapse the work across requests.
pub fn bushy_input(depth: u32, salt: i64) -> String {
    fn go(depth: u32, next: &mut i64) -> String {
        let label = *next;
        *next += 1;
        if depth == 0 {
            format!("L[{label}]")
        } else {
            format!(
                "N[{label}]({}, {})",
                go(depth - 1, next),
                go(depth - 1, next)
            )
        }
    }
    let mut next = salt;
    go(depth, &mut next)
}
