//! Seeded random generators for trees and HTML documents, used by tests
//! and by the benchmark harness (workload generation).

use crate::html::{HtmlDoc, HtmlElem};
use crate::tree::Tree;
use crate::ty::TreeType;
use fast_smt::{Label, Sort, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable random tree generator.
///
/// # Examples
///
/// ```
/// use fast_trees::{TreeGen, TreeType};
/// use fast_smt::{LabelSig, Sort};
///
/// let bt = TreeType::new("BT", LabelSig::single("i", Sort::Int),
///                        vec![("L", 0), ("N", 2)]);
/// let mut g = TreeGen::new(42).with_max_depth(5).with_int_range(-10, 10);
/// let t = g.tree(&bt);
/// assert!(t.conforms_to(&bt));
/// ```
#[derive(Debug)]
pub struct TreeGen {
    rng: StdRng,
    max_depth: usize,
    int_lo: i64,
    int_hi: i64,
    string_pool: Vec<String>,
}

impl TreeGen {
    /// Creates a generator with the given seed (deterministic).
    pub fn new(seed: u64) -> TreeGen {
        TreeGen {
            rng: StdRng::seed_from_u64(seed),
            max_depth: 6,
            int_lo: -100,
            int_hi: 100,
            string_pool: vec![
                String::new(),
                "a".into(),
                "b".into(),
                "div".into(),
                "script".into(),
            ],
        }
    }

    /// Sets the maximum tree depth.
    pub fn with_max_depth(mut self, d: usize) -> TreeGen {
        self.max_depth = d.max(1);
        self
    }

    /// Sets the range for integer label fields (inclusive).
    pub fn with_int_range(mut self, lo: i64, hi: i64) -> TreeGen {
        assert!(lo <= hi);
        self.int_lo = lo;
        self.int_hi = hi;
        self
    }

    /// Sets the pool for string label fields.
    pub fn with_string_pool(mut self, pool: Vec<String>) -> TreeGen {
        assert!(!pool.is_empty());
        self.string_pool = pool;
        self
    }

    /// Access to the underlying RNG (for ad-hoc decisions in harnesses).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Generates a random value of a sort.
    pub fn value(&mut self, sort: Sort) -> Value {
        match sort {
            Sort::Bool => Value::Bool(self.rng.gen()),
            Sort::Int => Value::Int(self.rng.gen_range(self.int_lo..=self.int_hi)),
            Sort::Str => {
                let i = self.rng.gen_range(0..self.string_pool.len());
                Value::Str(self.string_pool[i].clone())
            }
            Sort::Char => Value::Char(self.rng.gen_range(b'a'..=b'z') as char),
        }
    }

    /// Generates a random label conforming to the type's signature.
    pub fn label(&mut self, ty: &TreeType) -> Label {
        let values = ty
            .sig()
            .fields()
            .iter()
            .map(|(_, s)| *s)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|s| self.value(s))
            .collect();
        Label::new(values)
    }

    /// Generates a random well-formed tree of the type.
    pub fn tree(&mut self, ty: &TreeType) -> Tree {
        self.tree_at(ty, self.max_depth)
    }

    fn tree_at(&mut self, ty: &TreeType, fuel: usize) -> Tree {
        let candidates: Vec<_> = ty
            .ctor_ids()
            .filter(|&c| fuel > 1 || ty.rank(c) == 0)
            .collect();
        let ctor = candidates[self.rng.gen_range(0..candidates.len())];
        let label = self.label(ty);
        let children = (0..ty.rank(ctor))
            .map(|_| self.tree_at(ty, fuel - 1))
            .collect();
        Tree::new(ctor, label, children)
    }

    /// Generates `n` random trees.
    pub fn trees(&mut self, ty: &TreeType, n: usize) -> Vec<Tree> {
        (0..n).map(|_| self.tree(ty)).collect()
    }
}

/// Random HTML document generator for the sanitizer benchmarks (§5.1):
/// produces documents with a realistic element/attribute/text/script mix
/// whose rendered size approximates a target byte count.
#[derive(Debug)]
pub struct HtmlGen {
    rng: StdRng,
    /// Probability (percent) that an element is a `script` element.
    pub script_percent: u32,
}

const TAGS: &[&str] = &[
    "div", "p", "span", "a", "ul", "li", "table", "tr", "td", "b", "i", "h1", "h2", "img",
];
const ATTR_NAMES: &[&str] = &["id", "class", "href", "style", "title"];
const WORDS: &[&str] = &[
    "lorem",
    "ipsum",
    "dolor",
    "sit",
    "amet",
    "consectetur",
    "adipiscing",
    "elit",
    "sed'do",
    "eiusmod\"t",
];

impl HtmlGen {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> HtmlGen {
        HtmlGen {
            rng: StdRng::seed_from_u64(seed),
            script_percent: 5,
        }
    }

    fn words(&mut self, n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
        }
        s
    }

    fn elem(&mut self, depth: usize) -> HtmlElem {
        let is_script = self.rng.gen_range(0..100u32) < self.script_percent;
        let tag = if is_script {
            "script"
        } else {
            TAGS[self.rng.gen_range(0..TAGS.len())]
        };
        let mut e = HtmlElem::new(tag);
        for _ in 0..self.rng.gen_range(0..3) {
            let name = ATTR_NAMES[self.rng.gen_range(0..ATTR_NAMES.len())];
            let n = self.rng.gen_range(1..3);
            let value = self.words(n);
            e = e.with_attr(name, &value);
        }
        if self.rng.gen_bool(0.7) {
            let n = self.rng.gen_range(2..12);
            let text = self.words(n);
            e = e.with_text(&text);
        }
        if depth > 0 && !is_script {
            for _ in 0..self.rng.gen_range(0..4) {
                e = e.with_child(self.elem(depth - 1));
            }
        }
        e
    }

    /// Generates a document whose rendered size is at least `min_bytes`.
    pub fn doc_of_size(&mut self, min_bytes: usize) -> HtmlDoc {
        let mut doc = HtmlDoc::default();
        let mut size = 0usize;
        while size < min_bytes {
            let e = self.elem(4);
            size += e_render_len(&e);
            doc.roots.push(e);
        }
        doc
    }
}

fn e_render_len(e: &HtmlElem) -> usize {
    HtmlDoc::new(vec![e.clone()]).render().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::LabelSig;

    #[test]
    fn deterministic() {
        let ty = TreeType::new(
            "BT",
            LabelSig::single("i", Sort::Int),
            vec![("L", 0), ("N", 2)],
        );
        let t1 = TreeGen::new(7).tree(&ty);
        let t2 = TreeGen::new(7).tree(&ty);
        assert_eq!(t1, t2);
        let t3 = TreeGen::new(8).tree(&ty);
        // Overwhelmingly likely to differ.
        assert!(t1 != t3 || t1.size() == 1);
    }

    #[test]
    fn respects_depth_and_conformance() {
        let ty = TreeType::new(
            "T",
            LabelSig::single("s", Sort::Str),
            vec![("z", 0), ("u", 1), ("b", 2), ("t", 3)],
        );
        let mut g = TreeGen::new(1).with_max_depth(4);
        for _ in 0..50 {
            let t = g.tree(&ty);
            assert!(t.conforms_to(&ty));
            assert!(t.depth() <= 4);
        }
    }

    #[test]
    fn html_doc_size_target() {
        let mut g = HtmlGen::new(3);
        let doc = g.doc_of_size(20_000);
        let rendered = doc.render();
        assert!(rendered.len() >= 20_000);
        // Encoding round-trips.
        let ty = crate::html::html_type();
        let t = doc.encode(&ty);
        assert_eq!(HtmlDoc::decode(&ty, &t).unwrap(), doc);
    }

    #[test]
    fn html_gen_produces_scripts() {
        let mut g = HtmlGen::new(5);
        g.script_percent = 50;
        let doc = g.doc_of_size(5_000);
        fn has_script(e: &HtmlElem) -> bool {
            e.tag == "script" || e.children.iter().any(has_script)
        }
        assert!(doc.roots.iter().any(has_script));
    }
}
