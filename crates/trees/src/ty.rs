//! Ranked tree types: a finite set of constructors with fixed ranks, plus
//! a label signature shared by every node (the paper's `T_σ^Σ`, §3.1).

use fast_smt::LabelSig;
use std::fmt;
use std::sync::Arc;

/// Identifier of a constructor within its [`TreeType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtorId(pub usize);

/// A tree constructor: a name and a rank (number of children).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ctor {
    name: String,
    rank: usize,
}

impl Ctor {
    /// Creates a constructor.
    pub fn new(name: &str, rank: usize) -> Self {
        Ctor {
            name: name.to_string(),
            rank,
        }
    }

    /// Constructor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of children.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

/// A ranked alphabet with attributes: the type `T_σ^Σ` of σ-labeled finite
/// trees over constructors Σ.
///
/// At least one constructor must be nullary so the type is inhabited
/// (§3.1 requires `Σ(0)` non-empty).
///
/// # Examples
///
/// ```
/// use fast_trees::TreeType;
/// use fast_smt::{LabelSig, Sort};
///
/// // type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
/// let html = TreeType::new(
///     "HtmlE",
///     LabelSig::single("tag", Sort::Str),
///     vec![("nil", 0), ("val", 1), ("attr", 2), ("node", 3)],
/// );
/// assert_eq!(html.rank(html.ctor_id("node").unwrap()), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TreeType {
    name: String,
    sig: LabelSig,
    ctors: Vec<Ctor>,
}

impl TreeType {
    /// Creates a tree type.
    ///
    /// # Panics
    ///
    /// Panics if no constructor is nullary (the type would be empty) or if
    /// two constructors share a name.
    pub fn new(name: &str, sig: LabelSig, ctors: Vec<(&str, usize)>) -> Arc<Self> {
        assert!(
            ctors.iter().any(|(_, r)| *r == 0),
            "tree type {name} needs at least one nullary constructor"
        );
        for i in 0..ctors.len() {
            for j in (i + 1)..ctors.len() {
                assert_ne!(ctors[i].0, ctors[j].0, "duplicate constructor name");
            }
        }
        Arc::new(TreeType {
            name: name.to_string(),
            sig,
            ctors: ctors.into_iter().map(|(n, r)| Ctor::new(n, r)).collect(),
        })
    }

    /// Internal constructor for deserialization paths that have already
    /// validated the invariants.
    pub(crate) fn from_validated_parts(name: String, sig: LabelSig, ctors: Vec<Ctor>) -> TreeType {
        TreeType { name, sig, ctors }
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The label signature of every node.
    pub fn sig(&self) -> &LabelSig {
        &self.sig
    }

    /// All constructors.
    pub fn ctors(&self) -> &[Ctor] {
        &self.ctors
    }

    /// Number of constructors.
    pub fn ctor_count(&self) -> usize {
        self.ctors.len()
    }

    /// Looks up a constructor by name.
    pub fn ctor_id(&self, name: &str) -> Option<CtorId> {
        self.ctors.iter().position(|c| c.name() == name).map(CtorId)
    }

    /// The constructor for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn ctor(&self, id: CtorId) -> &Ctor {
        &self.ctors[id.0]
    }

    /// Rank of a constructor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn rank(&self, id: CtorId) -> usize {
        self.ctors[id.0].rank()
    }

    /// Name of a constructor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn ctor_name(&self, id: CtorId) -> &str {
        self.ctors[id.0].name()
    }

    /// Ids of all constructors, in declaration order.
    pub fn ctor_ids(&self) -> impl Iterator<Item = CtorId> + '_ {
        (0..self.ctors.len()).map(CtorId)
    }

    /// Maximum rank over all constructors.
    pub fn max_rank(&self) -> usize {
        self.ctors.iter().map(Ctor::rank).max().unwrap_or(0)
    }

    /// A nullary constructor (always exists).
    pub fn some_nullary(&self) -> CtorId {
        self.ctor_ids()
            .find(|&c| self.rank(c) == 0)
            .expect("validated at construction")
    }
}

impl fmt::Display for TreeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type {}{} {{", self.name, self.sig)?;
        for (i, c) in self.ctors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}({})", c.name(), c.rank())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::Sort;

    fn html() -> Arc<TreeType> {
        TreeType::new(
            "HtmlE",
            LabelSig::single("tag", Sort::Str),
            vec![("nil", 0), ("val", 1), ("attr", 2), ("node", 3)],
        )
    }

    #[test]
    fn lookups() {
        let t = html();
        assert_eq!(t.ctor_count(), 4);
        let node = t.ctor_id("node").unwrap();
        assert_eq!(t.rank(node), 3);
        assert_eq!(t.ctor_name(node), "node");
        assert!(t.ctor_id("missing").is_none());
        assert_eq!(t.max_rank(), 3);
        assert_eq!(t.rank(t.some_nullary()), 0);
    }

    #[test]
    fn display() {
        let t = html();
        assert_eq!(
            t.to_string(),
            "type HtmlE[tag: String] {nil(0), val(1), attr(2), node(3)}"
        );
    }

    #[test]
    #[should_panic(expected = "nullary")]
    fn no_nullary_panics() {
        TreeType::new("B", LabelSig::unit(), vec![("n", 2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ctor_panics() {
        TreeType::new("B", LabelSig::unit(), vec![("n", 0), ("n", 2)]);
    }
}
