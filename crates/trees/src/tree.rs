//! σ-labeled finite trees, globally hash-consed.

use crate::ty::{CtorId, TreeType};
use fast_smt::{Label, Value};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The stable identity of an interned tree: equal ids ⇔ structurally
/// equal trees, for the life of the process.
///
/// Ids are allocated monotonically by the global interner
/// ([`crate::intern`]) and never reused — the canonical node behind an
/// id is owned by the intern table and never dropped — so a `TreeId` is
/// a sound cache key across arbitrary drops and rebuilds of the trees
/// it describes. Ids depend on interning *order* (which threads can
/// perturb), so they are deliberately not `Ord`: use the tree's
/// structural ordering for deterministic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeId(pub(crate) u64);

impl TreeId {
    /// The raw 64-bit id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// An immutable σ-labeled tree, hash-consed in a process-wide table:
/// every structurally distinct subtree exists once, behind one
/// canonical `Arc`, with a stable [`TreeId`].
///
/// Cloning is O(1) (one `Arc` bump). Equality is an id comparison and
/// hashing writes a precomputed structural hash — both O(1) regardless
/// of tree size. Ordering is structural (deterministic across runs),
/// with an id fast path for the equal case.
///
/// # Examples
///
/// ```
/// use fast_trees::{Tree, TreeType};
/// use fast_smt::{Label, LabelSig, Sort};
///
/// let bt = TreeType::new("BT", LabelSig::single("i", Sort::Int),
///                        vec![("L", 0), ("N", 2)]);
/// let leaf = |n: i64| Tree::leaf(bt.ctor_id("L").unwrap(), Label::single(n));
/// let t = Tree::new(bt.ctor_id("N").unwrap(), Label::single(0i64),
///                   vec![leaf(1), leaf(2)]);
/// assert_eq!(t.size(), 3);
/// assert_eq!(t.display(&bt).to_string(), "N[0](L[1], L[2])");
/// // Building the same structure again yields the same canonical node.
/// let again = Tree::parse(&bt, "N[0](L[1], L[2])").unwrap();
/// assert_eq!(t.id(), again.id());
/// assert!(t.ptr_eq(&again));
/// ```
pub struct Tree {
    node: Arc<Node>,
    id: TreeId,
    hash: u64,
}

pub(crate) struct Node {
    pub(crate) ctor: CtorId,
    pub(crate) label: Label,
    pub(crate) children: Vec<Tree>,
}

impl Tree {
    /// Creates a tree node (interned: structurally equal trees share one
    /// canonical node and [`TreeId`], whoever builds them).
    pub fn new(ctor: CtorId, label: Label, children: Vec<Tree>) -> Tree {
        crate::intern::intern(ctor, label, children)
    }

    /// Assembles a handle around an already-interned node (interner
    /// use only — this is what keeps `Tree::new` the single chokepoint).
    pub(crate) fn from_parts(node: Arc<Node>, id: TreeId, hash: u64) -> Tree {
        Tree { node, id, hash }
    }

    /// Creates a leaf (nullary node).
    pub fn leaf(ctor: CtorId, label: Label) -> Tree {
        Tree::new(ctor, label, Vec::new())
    }

    /// The constructor at the root.
    pub fn ctor(&self) -> CtorId {
        self.node.ctor
    }

    /// The label at the root.
    pub fn label(&self) -> &Label {
        &self.node.label
    }

    /// Child subtrees.
    pub fn children(&self) -> &[Tree] {
        &self.node.children
    }

    /// The `i`-th child.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn child(&self, i: usize) -> &Tree {
        &self.node.children[i]
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(Tree::size).sum::<usize>()
    }

    /// Height (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(Tree::depth).max().unwrap_or(0)
    }

    /// Checks the tree is well-formed for `ty`: constructor ids in range
    /// with matching ranks, labels conforming to the signature.
    pub fn conforms_to(&self, ty: &TreeType) -> bool {
        self.ctor().0 < ty.ctor_count()
            && ty.rank(self.ctor()) == self.children().len()
            && self.label().conforms_to(ty.sig())
            && self.children().iter().all(|c| c.conforms_to(ty))
    }

    /// Pre-order iterator over all nodes.
    pub fn iter(&self) -> Iter<'_> {
        Iter { stack: vec![self] }
    }

    /// The interned identity of this tree: equal ids ⇔ structurally
    /// equal trees, stable and never reused for the life of the process.
    /// This is the memo key the runtime uses (`(state, TreeId)`), and
    /// the right key for any caller-side cache over trees.
    pub fn id(&self) -> TreeId {
        self.id
    }

    /// The precomputed structural hash (deterministic across runs and
    /// threads; equal trees have equal hashes).
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }

    /// True if both handles share the canonical allocation. Because
    /// trees are globally interned, this coincides with `==` (and with
    /// `id()` equality) — it exists as a cheap sanity probe for tests.
    pub fn ptr_eq(&self, other: &Tree) -> bool {
        Arc::ptr_eq(&self.node, &other.node)
    }

    /// Pretty-prints using constructor names from `ty`.
    pub fn display<'a>(&'a self, ty: &'a TreeType) -> DisplayTree<'a> {
        DisplayTree { tree: self, ty }
    }

    /// Parses the s-expression syntax produced by [`Tree::display`]:
    /// `ctor[label-values](child, …)`, with `[...]` omitted for unit labels
    /// and `(...)` omitted for leaves. String values use double quotes with
    /// `\\`-escapes; chars use single quotes.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or arity error.
    pub fn parse(ty: &TreeType, input: &str) -> Result<Tree, String> {
        let mut p = Parser {
            ty,
            chars: input.chars().collect(),
            pos: 0,
        };
        let t = p.tree()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at position {}", p.pos));
        }
        Ok(t)
    }
}

impl Clone for Tree {
    fn clone(&self) -> Tree {
        Tree {
            node: Arc::clone(&self.node),
            id: self.id,
            hash: self.hash,
        }
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        self.id == other.id
    }
}
impl Eq for Tree {}

impl Hash for Tree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Tree {
    fn partial_cmp(&self, other: &Tree) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tree {
    fn cmp(&self, other: &Tree) -> std::cmp::Ordering {
        // Structural order (ctor, label, children — the pre-interning
        // derived order) keeps iteration deterministic across runs; ids
        // depend on interning order, so they only serve the equal case.
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.node
            .ctor
            .cmp(&other.node.ctor)
            .then_with(|| self.node.label.cmp(&other.node.label))
            .then_with(|| self.node.children.cmp(&other.node.children))
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Constructor names are not known without a type; print the id.
        write_tree(f, self, &|c| format!("c{}", c.0))
    }
}

/// Helper for [`Tree::display`].
pub struct DisplayTree<'a> {
    tree: &'a Tree,
    ty: &'a TreeType,
}

impl fmt::Display for DisplayTree<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_tree(f, self.tree, &|c| self.ty.ctor_name(c).to_string())
    }
}

fn write_tree(
    f: &mut fmt::Formatter<'_>,
    t: &Tree,
    name: &dyn Fn(CtorId) -> String,
) -> fmt::Result {
    write!(f, "{}", name(t.ctor()))?;
    if t.label().arity() > 0 {
        write!(f, "{}", t.label())?;
    }
    if !t.children().is_empty() {
        write!(f, "(")?;
        for (i, c) in t.children().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_tree(f, c, name)?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

// Tree::to_string for typed display: the blanket Display above prints raw
// constructor ids; `t.display(&ty)` prints names. Tests below cover both.

/// Pre-order iterator (see [`Tree::iter`]).
pub struct Iter<'a> {
    stack: Vec<&'a Tree>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Tree;
    fn next(&mut self) -> Option<&'a Tree> {
        let t = self.stack.pop()?;
        for c in t.children().iter().rev() {
            self.stack.push(c);
        }
        Some(t)
    }
}

struct Parser<'a> {
    ty: &'a TreeType,
    chars: Vec<char>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at position {}", self.pos))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected identifier at position {}", self.pos));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn tree(&mut self) -> Result<Tree, String> {
        let name = self.ident()?;
        let ctor = self
            .ty
            .ctor_id(&name)
            .ok_or_else(|| format!("unknown constructor '{name}'"))?;
        self.skip_ws();
        let label = if self.peek() == Some('[') {
            self.bump();
            let mut values = Vec::new();
            self.skip_ws();
            if self.peek() != Some(']') {
                loop {
                    values.push(self.value()?);
                    self.skip_ws();
                    if self.peek() == Some(',') {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(']')?;
            Label::new(values)
        } else {
            Label::unit()
        };
        if !label.conforms_to(self.ty.sig()) {
            return Err(format!(
                "label {label} does not conform to signature {}",
                self.ty.sig()
            ));
        }
        let mut children = Vec::new();
        self.skip_ws();
        if self.peek() == Some('(') {
            self.bump();
            self.skip_ws();
            if self.peek() != Some(')') {
                loop {
                    children.push(self.tree()?);
                    self.skip_ws();
                    if self.peek() == Some(',') {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(')')?;
        }
        if children.len() != self.ty.rank(ctor) {
            return Err(format!(
                "constructor '{name}' expects {} children, got {}",
                self.ty.rank(ctor),
                children.len()
            ));
        }
        Ok(Tree::new(ctor, label, children))
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(c) => s.push(c),
                            None => return Err("unterminated string".into()),
                        },
                        Some(c) => s.push(c),
                        None => return Err("unterminated string".into()),
                    }
                }
                Ok(Value::Str(s))
            }
            Some('\'') => {
                self.bump();
                let c = match self.bump() {
                    Some('\\') => match self.bump() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some(c) => c,
                        None => return Err("unterminated char".into()),
                    },
                    Some(c) => c,
                    None => return Err("unterminated char".into()),
                };
                self.expect('\'')?;
                Ok(Value::Char(c))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.bump();
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|e| e.to_string())
            }
            _ => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Err(format!("unexpected value '{word}'")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::{LabelSig, Sort};

    fn bt() -> Arc<TreeType> {
        TreeType::new(
            "BT",
            LabelSig::single("i", Sort::Int),
            vec![("L", 0), ("N", 2)],
        )
    }

    fn html() -> Arc<TreeType> {
        TreeType::new(
            "HtmlE",
            LabelSig::single("tag", Sort::Str),
            vec![("nil", 0), ("val", 1), ("attr", 2), ("node", 3)],
        )
    }

    #[test]
    fn build_and_inspect() {
        let ty = bt();
        let l = |n: i64| Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(n));
        let t = Tree::new(
            ty.ctor_id("N").unwrap(),
            Label::single(0i64),
            vec![l(1), l(2)],
        );
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 2);
        assert!(t.conforms_to(&ty));
        assert_eq!(t.iter().count(), 3);
        let labels: Vec<i64> = t
            .iter()
            .map(|n| n.label().get(0).as_int().unwrap())
            .collect();
        assert_eq!(labels, vec![0, 1, 2]); // pre-order
    }

    #[test]
    fn nonconforming() {
        let ty = bt();
        // Wrong arity for N.
        let t = Tree::new(ty.ctor_id("N").unwrap(), Label::single(0i64), vec![]);
        assert!(!t.conforms_to(&ty));
        // Wrong label sort.
        let t = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single("x"));
        assert!(!t.conforms_to(&ty));
    }

    #[test]
    fn parse_round_trip() {
        let ty = html();
        let text = r#"node["script"](nil[""], nil[""], node["div"](nil[""], nil[""], nil[""]))"#;
        let t = Tree::parse(&ty, text).unwrap();
        assert!(t.conforms_to(&ty));
        let printed = t.display(&ty).to_string();
        let t2 = Tree::parse(&ty, &printed).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parse_int_labels() {
        let ty = bt();
        let t = Tree::parse(&ty, "N[-5](L[1], N[2](L[3], L[4]))").unwrap();
        assert_eq!(t.label().get(0).as_int(), Some(-5));
        assert_eq!(t.size(), 5);
    }

    #[test]
    fn parse_errors() {
        let ty = bt();
        assert!(Tree::parse(&ty, "X[1]").is_err()); // unknown ctor
        assert!(Tree::parse(&ty, "N[1](L[1])").is_err()); // arity
        assert!(Tree::parse(&ty, "L[\"s\"]").is_err()); // label sort
        assert!(Tree::parse(&ty, "L[1] L[2]").is_err()); // trailing
    }

    #[test]
    fn structural_equality_and_sharing() {
        let ty = bt();
        let l = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(7i64));
        let t1 = Tree::new(
            ty.ctor_id("N").unwrap(),
            Label::single(0i64),
            vec![l.clone(), l.clone()],
        );
        let t2 = Tree::parse(&ty, "N[0](L[7], L[7])").unwrap();
        assert_eq!(t1, t2);
        // Interning: independent construction paths (builder vs parser)
        // converge on the same canonical node and id.
        assert_eq!(t1.id(), t2.id());
        assert!(t1.ptr_eq(&t2));
        assert!(t1.child(0).ptr_eq(t2.child(1)));
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(t1);
        assert!(s.contains(&t2));
    }

    #[test]
    fn escaped_strings() {
        let ty = html();
        let t = Tree::parse(&ty, r#"nil["a\"b"]"#).unwrap();
        assert_eq!(t.label().get(0).as_str(), Some("a\"b"));
        let printed = t.display(&ty).to_string();
        assert_eq!(Tree::parse(&ty, &printed).unwrap(), t);
    }
}
