//! Global hash-consing of trees.
//!
//! Every [`Tree`] in the process is built through this module: the
//! constructors ([`Tree::new`], [`Tree::leaf`], and everything layered
//! on them — the s-expression parser, the HTML/JSON builders, the
//! generators) intern each node in a process-wide, 16-way-sharded
//! hash-cons table. Each structurally distinct `(ctor, label, children)`
//! node is stored exactly once behind an [`Arc`], and every `Tree`
//! handle carries the canonical node plus:
//!
//! * a **stable 64-bit [`TreeId`]** — equal ids ⇔ structurally equal
//!   trees, for the life of the process. Ids are allocated from a
//!   monotonic counter and *never reused*, which is what makes them
//!   sound memo keys: unlike the raw `Arc` addresses the batch runtime
//!   used before, an id can never be recycled into an alias of a
//!   dropped tree (the interner owns the canonical node, so it is never
//!   dropped at all);
//! * a **precomputed structural hash**, deterministic across runs and
//!   threads (derived from the structure only, never from ids), making
//!   `Hash` O(1) and shard selection consistent.
//!
//! This mirrors `fast_smt::intern` (`Interned<Formula>`), which proved
//! the pattern on guard formulas in PR 1. The full interning contract —
//! what callers may and may not rely on — is written out in
//! `ARCHITECTURE.md` §6 ("Tree interning").
//!
//! # Memory
//!
//! The table is append-only: entries are never evicted, so every
//! structurally distinct tree built during the process stays resident.
//! That is the price of id stability, and it is the same trade
//! `fast-smt` makes for formulas. `intern.misses` therefore *is* the
//! table size.
//!
//! # Telemetry
//!
//! | counter | meaning |
//! |---|---|
//! | `intern.hits` | an intern call returned an existing canonical node |
//! | `intern.misses` | a new canonical node was allocated (= table size) |
//! | `intern.hash_collisions` | two distinct nodes share a 64-bit structural hash |
//! | `intern.contended` | a shard lock was busy and the call had to block |
//!
//! Residency is tracked by gauges, so a windowed view (`fastc watch`,
//! the future `fast-serve`) can watch it without replaying counters:
//! `intern.resident_nodes.shard00..15` count canonical nodes per shard
//! (their sum equals [`table_len`]; imbalance means a skewed structural
//! hash), and `intern.resident_bytes` estimates the heap bytes the
//! whole table pins ([`resident_bytes`]). Because the table never
//! evicts, these gauges only rise — the point of exposing them is to
//! see *how fast*, which bounded-memory evaluation work needs.

use crate::tree::{Node, Tree, TreeId};
use crate::ty::CtorId;
use fast_smt::{Label, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of intern-table shards (matches `fast_smt::intern::SHARDS`).
pub const SHARDS: usize = 16;

/// One canonical node and its id.
struct Entry {
    node: Arc<Node>,
    id: TreeId,
}

/// Buckets keyed by the full 64-bit structural hash; a bucket with more
/// than one entry is a genuine hash collision (counted).
type Shard = HashMap<u64, Vec<Entry>>;

struct Interner {
    shards: [Mutex<Shard>; SHARDS],
    next_id: AtomicU64,
}

fn interner() -> &'static Interner {
    static TABLE: OnceLock<Interner> = OnceLock::new();
    TABLE.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        next_id: AtomicU64::new(0),
    })
}

/// Deterministic structural hash of a prospective node. Children
/// contribute their precomputed hashes (not their ids), so the result
/// depends only on structure — the same in every thread and run.
fn structural_hash(ctor: CtorId, label: &Label, children: &[Tree]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ctor.hash(&mut h);
    label.hash(&mut h);
    for c in children {
        h.write_u64(c.precomputed_hash());
    }
    h.finish()
}

/// Shard index for a structural hash (top bits, like the solver cache).
#[inline]
fn shard_of(hash: u64) -> usize {
    (hash >> 60) as usize & (SHARDS - 1)
}

/// Per-shard resident-node gauge names (`&'static` literals, as the
/// registry requires), mirroring the solver cache's shard counters.
static SHARD_GAUGE_NAMES: [&str; SHARDS] = [
    "intern.resident_nodes.shard00",
    "intern.resident_nodes.shard01",
    "intern.resident_nodes.shard02",
    "intern.resident_nodes.shard03",
    "intern.resident_nodes.shard04",
    "intern.resident_nodes.shard05",
    "intern.resident_nodes.shard06",
    "intern.resident_nodes.shard07",
    "intern.resident_nodes.shard08",
    "intern.resident_nodes.shard09",
    "intern.resident_nodes.shard10",
    "intern.resident_nodes.shard11",
    "intern.resident_nodes.shard12",
    "intern.resident_nodes.shard13",
    "intern.resident_nodes.shard14",
    "intern.resident_nodes.shard15",
];

fn shard_gauge(i: usize) -> &'static fast_obs::Gauge {
    static GAUGES: OnceLock<[&'static fast_obs::Gauge; SHARDS]> = OnceLock::new();
    GAUGES.get_or_init(|| std::array::from_fn(|i| fast_obs::gauge(SHARD_GAUGE_NAMES[i])))[i]
}

fn bytes_gauge() -> &'static fast_obs::Gauge {
    static G: OnceLock<&'static fast_obs::Gauge> = OnceLock::new();
    G.get_or_init(|| fast_obs::gauge("intern.resident_bytes"))
}

/// Estimated heap bytes a newly interned node pins for the life of the
/// process: the canonical [`Node`] allocation, its label's field values
/// (plus string heap storage), the child-handle vector, and the bucket
/// [`Entry`] bookkeeping. An estimate — allocator slack and `HashMap`
/// load factor are not modelled — but a stable one, so the
/// `intern.resident_bytes` gauge is comparable across runs.
fn node_bytes(node: &Node) -> u64 {
    let label_heap: usize = node
        .label
        .values()
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.capacity(),
            _ => 0,
        })
        .sum();
    (std::mem::size_of::<Node>()
        + std::mem::size_of_val(node.label.values())
        + label_heap
        + node.children.len() * std::mem::size_of::<Tree>()
        + std::mem::size_of::<Entry>()) as u64
}

/// Interns a node, returning the canonical handle for this structure.
///
/// Children must already be interned handles (they always are — `Tree`
/// cannot be built any other way), so the equality scan compares child
/// ids in O(arity) instead of deep-comparing subtrees.
pub(crate) fn intern(ctor: CtorId, label: Label, children: Vec<Tree>) -> Tree {
    let hash = structural_hash(ctor, &label, &children);
    let table = interner();
    let mut shard = match table.shards[shard_of(hash)].try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::WouldBlock) => {
            fast_obs::count!("intern.contended");
            table.shards[shard_of(hash)].lock().unwrap()
        }
        Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
    };
    let bucket = shard.entry(hash).or_default();
    for e in bucket.iter() {
        if e.node.ctor == ctor && e.node.children == children && e.node.label == label {
            fast_obs::count!("intern.hits");
            return Tree::from_parts(Arc::clone(&e.node), e.id, hash);
        }
    }
    fast_obs::count!("intern.misses");
    if !bucket.is_empty() {
        fast_obs::count!("intern.hash_collisions");
    }
    let id = TreeId(table.next_id.fetch_add(1, Ordering::Relaxed));
    let node = Arc::new(Node {
        ctor,
        label,
        children,
    });
    shard_gauge(shard_of(hash)).add(1);
    bytes_gauge().add(node_bytes(&node));
    bucket.push(Entry {
        node: Arc::clone(&node),
        id,
    });
    Tree::from_parts(node, id, hash)
}

/// Number of distinct trees currently interned (all shards). Equals the
/// process-lifetime `intern.misses` count: the table never evicts.
pub fn table_len() -> usize {
    interner()
        .shards
        .iter()
        .map(|s| s.lock().unwrap().values().map(Vec::len).sum::<usize>())
        .sum()
}

/// Resident canonical nodes per shard (sums to [`table_len`]) — the
/// live readings behind the `intern.resident_nodes.shard*` gauges,
/// counted from the table itself rather than the gauges.
pub fn shard_lens() -> [usize; SHARDS] {
    std::array::from_fn(|i| {
        interner().shards[i]
            .lock()
            .unwrap()
            .values()
            .map(Vec::len)
            .sum()
    })
}

/// Estimated heap bytes pinned by the intern table — the current
/// reading of the `intern.resident_bytes` gauge.
pub fn resident_bytes() -> u64 {
    bytes_gauge().get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::{LabelSig, Sort};
    use std::sync::Arc as StdArc;

    fn bt() -> StdArc<crate::ty::TreeType> {
        crate::ty::TreeType::new(
            "BT",
            LabelSig::single("i", Sort::Int),
            vec![("L", 0), ("N", 2)],
        )
    }

    #[test]
    fn interning_dedupes_and_ids_are_stable() {
        let ty = bt();
        let leaf = || Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(424_242i64));
        let a = leaf();
        let b = leaf();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.id(), b.id());
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
        let c = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(424_243i64));
        assert_ne!(a.id(), c.id());
        assert!(!a.ptr_eq(&c));
    }

    #[test]
    fn residency_gauges_track_the_table() {
        let ty = bt();
        let before_nodes = table_len();
        let before_bytes = resident_bytes();
        // Two distinct new structures, one re-intern (no growth).
        let a = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(555_000_111i64));
        let _b = Tree::new(
            ty.ctor_id("N").unwrap(),
            Label::single(555_000_112i64),
            vec![a.clone(), a.clone()],
        );
        let _a2 = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(555_000_111i64));
        // Sibling tests intern concurrently, so totals are ≥, not ==.
        assert!(table_len() >= before_nodes + 2);
        assert!(resident_bytes() >= before_bytes + 2 * std::mem::size_of::<Node>() as u64);
        // When no concurrent interning lands mid-check (two identical
        // per-shard readings bracket the snapshot), the gauges must
        // agree with the table exactly.
        let lens_before = shard_lens();
        let snap = fast_obs::snapshot();
        let lens_after = shard_lens();
        if lens_before == lens_after {
            assert_eq!(
                snap.gauge_sum_prefix("intern.resident_nodes.") as usize,
                lens_after.iter().sum::<usize>(),
            );
            for (i, name) in SHARD_GAUGE_NAMES.iter().enumerate() {
                assert_eq!(snap.gauge(name) as usize, lens_after[i], "shard {i}");
            }
        }
    }

    #[test]
    fn table_len_is_monotonic() {
        let ty = bt();
        let before = table_len();
        // A label value chosen to be unique to this test.
        let _t = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(987_654_321i64));
        let after = table_len();
        assert!(after > before, "new structure must grow the table");
        let _t2 = Tree::leaf(ty.ctor_id("L").unwrap(), Label::single(987_654_321i64));
        assert_eq!(table_len(), after, "re-interning must not grow the table");
    }
}
