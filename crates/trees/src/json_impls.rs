//! JSON support via [`fast_json`]: trees serialize structurally as
//! `{ctor, label, children}`; tree types revalidate their invariants on
//! deserialization.

use crate::tree::Tree;
use crate::ty::{Ctor, CtorId, TreeType};
use fast_json::{FromJson, Json, JsonError, ToJson};

impl ToJson for CtorId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for CtorId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CtorId(usize::from_json(v)?))
    }
}

impl ToJson for Tree {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ctor", self.ctor().to_json()),
            ("label", self.label().to_json()),
            (
                "children",
                Json::Array(self.children().iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Tree {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let ctor = CtorId::from_json(
            v.get("ctor")
                .ok_or_else(|| JsonError::msg("missing ctor"))?,
        )?;
        let label = FromJson::from_json(
            v.get("label")
                .ok_or_else(|| JsonError::msg("missing label"))?,
        )?;
        let children: Vec<Tree> = FromJson::from_json(
            v.get("children")
                .ok_or_else(|| JsonError::msg("missing children"))?,
        )?;
        Ok(Tree::new(ctor, label, children))
    }
}

impl ToJson for TreeType {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name().to_string().to_json()),
            ("sig", self.sig().to_json()),
            (
                "ctors",
                Json::Array(
                    self.ctors()
                        .iter()
                        .map(|c| (c.name().to_string(), c.rank()).to_json())
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for TreeType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = String::from_json(
            v.get("name")
                .ok_or_else(|| JsonError::msg("missing name"))?,
        )?;
        let sig = FromJson::from_json(v.get("sig").ok_or_else(|| JsonError::msg("missing sig"))?)?;
        let ctors: Vec<(String, usize)> = FromJson::from_json(
            v.get("ctors")
                .ok_or_else(|| JsonError::msg("missing ctors"))?,
        )?;
        if !ctors.iter().any(|(_, r)| *r == 0) {
            return Err(JsonError::msg(
                "tree type needs at least one nullary constructor",
            ));
        }
        for i in 0..ctors.len() {
            for j in (i + 1)..ctors.len() {
                if ctors[i].0 == ctors[j].0 {
                    return Err(JsonError::msg("duplicate constructor name"));
                }
            }
        }
        Ok(TreeType::from_validated_parts(
            name,
            sig,
            ctors.into_iter().map(|(n, r)| Ctor::new(&n, r)).collect(),
        ))
    }
}
