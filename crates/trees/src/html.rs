//! The paper's HtmlE encoding (Fig. 3): unranked HTML documents as ranked
//! binary-style trees.
//!
//! * an element becomes `node[tag](attrs, first-child, next-sibling)`;
//! * an attribute becomes `attr[name](value, next-attribute)`;
//! * a string value becomes a `val` chain, one character per node, with the
//!   character stored in the tag field;
//! * `nil[""]` terminates every list.
//!
//! Text content is modeled as an attribute named `text`, matching the
//! figure (the string `a` inside `<script>` hangs off a `text`-labeled
//! `attr` node).

use crate::tree::Tree;
use crate::ty::{CtorId, TreeType};
use fast_smt::{Label, LabelSig, Sort};
use std::fmt;
use std::sync::Arc;

/// Returns the `HtmlE` tree type of the paper:
/// `type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }`.
pub fn html_type() -> Arc<TreeType> {
    TreeType::new(
        "HtmlE",
        LabelSig::single("tag", Sort::Str),
        vec![("nil", 0), ("val", 1), ("attr", 2), ("node", 3)],
    )
}

/// Constructor ids of the `HtmlE` type, resolved once.
#[derive(Debug, Clone, Copy)]
pub struct HtmlCtors {
    /// `nil(0)` — list/string/tree terminator.
    pub nil: CtorId,
    /// `val(1)` — one character of a string value.
    pub val: CtorId,
    /// `attr(2)` — an attribute (value, next-attribute).
    pub attr: CtorId,
    /// `node(3)` — an element (attrs, first-child, next-sibling).
    pub node: CtorId,
}

impl HtmlCtors {
    /// Resolves the constructor ids from an `HtmlE`-shaped type.
    ///
    /// # Panics
    ///
    /// Panics if any of `nil`, `val`, `attr`, `node` is missing.
    pub fn resolve(ty: &TreeType) -> HtmlCtors {
        HtmlCtors {
            nil: ty.ctor_id("nil").expect("nil ctor"),
            val: ty.ctor_id("val").expect("val ctor"),
            attr: ty.ctor_id("attr").expect("attr ctor"),
            node: ty.ctor_id("node").expect("node ctor"),
        }
    }
}

/// An unranked HTML element (the DOM view).
///
/// Text content is stored in `attrs` under the reserved name `text`,
/// mirroring Fig. 3 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HtmlElem {
    /// Element tag, e.g. `div`.
    pub tag: String,
    /// Attributes in order, e.g. `[("id", "e\"")]`; text content uses the
    /// reserved attribute name `text`.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<HtmlElem>,
}

impl HtmlElem {
    /// Creates an element with the given tag.
    pub fn new(tag: &str) -> HtmlElem {
        HtmlElem {
            tag: tag.to_string(),
            ..HtmlElem::default()
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, name: &str, value: &str) -> HtmlElem {
        self.attrs.push((name.to_string(), value.to_string()));
        self
    }

    /// Builder-style text content (reserved `text` attribute).
    pub fn with_text(self, text: &str) -> HtmlElem {
        self.with_attr("text", text)
    }

    /// Builder-style child addition.
    pub fn with_child(mut self, child: HtmlElem) -> HtmlElem {
        self.children.push(child);
        self
    }

    /// Total number of elements in this subtree.
    pub fn element_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(HtmlElem::element_count)
            .sum::<usize>()
    }
}

/// An HTML document: a sequence of top-level elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HtmlDoc {
    /// Top-level elements in order.
    pub roots: Vec<HtmlElem>,
}

impl HtmlDoc {
    /// Creates a document from top-level elements.
    pub fn new(roots: Vec<HtmlElem>) -> HtmlDoc {
        HtmlDoc { roots }
    }

    /// Encodes per Fig. 3 into an `HtmlE` tree (the sibling chain of the
    /// root elements, terminated by `nil`).
    pub fn encode(&self, ty: &TreeType) -> Tree {
        let c = HtmlCtors::resolve(ty);
        encode_elems(&c, &self.roots)
    }

    /// Decodes an `HtmlE` tree produced by [`HtmlDoc::encode`] (or by a
    /// transducer run over one) back into a document.
    ///
    /// # Errors
    ///
    /// Returns a message if the tree is not a well-formed encoding.
    pub fn decode(ty: &TreeType, tree: &Tree) -> Result<HtmlDoc, String> {
        let c = HtmlCtors::resolve(ty);
        Ok(HtmlDoc {
            roots: decode_elems(&c, tree)?,
        })
    }

    /// Total number of elements.
    pub fn element_count(&self) -> usize {
        self.roots.iter().map(HtmlElem::element_count).sum()
    }

    /// Renders to HTML text (attributes double-quoted; the reserved `text`
    /// attribute becomes text content placed before child elements).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for HtmlDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.roots {
            write_elem(f, e)?;
        }
        Ok(())
    }
}

fn write_elem(f: &mut fmt::Formatter<'_>, e: &HtmlElem) -> fmt::Result {
    write!(f, "<{}", e.tag)?;
    for (n, v) in &e.attrs {
        if n != "text" {
            write!(f, " {}=\"{}\"", n, v.replace('"', "&quot;"))?;
        }
    }
    if e.children.is_empty() && !e.attrs.iter().any(|(n, _)| n == "text") {
        return write!(f, " />");
    }
    write!(f, ">")?;
    for (n, v) in &e.attrs {
        if n == "text" {
            write!(
                f,
                "{}",
                v.replace('&', "&amp;")
                    .replace('<', "&lt;")
                    .replace('>', "&gt;")
            )?;
        }
    }
    for c in &e.children {
        write_elem(f, c)?;
    }
    write!(f, "</{}>", e.tag)
}

fn nil(c: &HtmlCtors) -> Tree {
    Tree::leaf(c.nil, Label::single(""))
}

fn encode_string(c: &HtmlCtors, s: &str) -> Tree {
    let mut t = nil(c);
    for ch in s.chars().rev() {
        t = Tree::new(c.val, Label::single(ch.to_string()), vec![t]);
    }
    t
}

fn encode_attrs(c: &HtmlCtors, attrs: &[(String, String)]) -> Tree {
    let mut t = nil(c);
    for (name, value) in attrs.iter().rev() {
        t = Tree::new(
            c.attr,
            Label::single(name.as_str()),
            vec![encode_string(c, value), t],
        );
    }
    t
}

fn encode_elems(c: &HtmlCtors, elems: &[HtmlElem]) -> Tree {
    let mut t = nil(c);
    for e in elems.iter().rev() {
        t = Tree::new(
            c.node,
            Label::single(e.tag.as_str()),
            vec![encode_attrs(c, &e.attrs), encode_elems(c, &e.children), t],
        );
    }
    t
}

fn tag_of(t: &Tree) -> Result<&str, String> {
    t.label()
        .get(0)
        .as_str()
        .ok_or_else(|| "HtmlE label is not a string".to_string())
}

fn decode_string(c: &HtmlCtors, mut t: &Tree) -> Result<String, String> {
    let mut s = String::new();
    loop {
        if t.ctor() == c.nil {
            return Ok(s);
        }
        if t.ctor() != c.val {
            return Err("expected val/nil in string encoding".into());
        }
        s.push_str(tag_of(t)?);
        t = t.child(0);
    }
}

fn decode_attrs(c: &HtmlCtors, mut t: &Tree) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    loop {
        if t.ctor() == c.nil {
            return Ok(out);
        }
        if t.ctor() != c.attr {
            return Err("expected attr/nil in attribute list".into());
        }
        out.push((tag_of(t)?.to_string(), decode_string(c, t.child(0))?));
        t = t.child(1);
    }
}

fn decode_elems(c: &HtmlCtors, mut t: &Tree) -> Result<Vec<HtmlElem>, String> {
    let mut out = Vec::new();
    loop {
        if t.ctor() == c.nil {
            return Ok(out);
        }
        if t.ctor() != c.node {
            return Err("expected node/nil in element list".into());
        }
        out.push(HtmlElem {
            tag: tag_of(t)?.to_string(),
            attrs: decode_attrs(c, t.child(0))?,
            children: decode_elems(c, t.child(1))?,
        });
        t = t.child(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The document of Fig. 3:
    /// `<div id='e"'><script>a</script></div><br />`.
    fn fig3() -> HtmlDoc {
        HtmlDoc::new(vec![
            HtmlElem::new("div")
                .with_attr("id", "e\"")
                .with_child(HtmlElem::new("script").with_text("a")),
            HtmlElem::new("br"),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let ty = html_type();
        let doc = fig3();
        let t = doc.encode(&ty);
        assert!(t.conforms_to(&ty));
        let back = HtmlDoc::decode(&ty, &t).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn fig3_structure() {
        let ty = html_type();
        let c = HtmlCtors::resolve(&ty);
        let t = fig3().encode(&ty);
        // Root is the div node; its third child is the br chain.
        assert_eq!(t.ctor(), c.node);
        assert_eq!(t.label().get(0).as_str(), Some("div"));
        let br = t.child(2);
        assert_eq!(br.label().get(0).as_str(), Some("br"));
        assert_eq!(br.child(2).ctor(), c.nil);
        // div's attrs: id attribute whose value is the two-char string e".
        let id = t.child(0);
        assert_eq!(id.ctor(), c.attr);
        assert_eq!(id.label().get(0).as_str(), Some("id"));
        let v1 = id.child(0);
        assert_eq!(v1.ctor(), c.val);
        assert_eq!(v1.label().get(0).as_str(), Some("e"));
        assert_eq!(v1.child(0).label().get(0).as_str(), Some("\""));
        // div's first child: script with text attr.
        let script = t.child(1);
        assert_eq!(script.label().get(0).as_str(), Some("script"));
        let text = script.child(0);
        assert_eq!(text.label().get(0).as_str(), Some("text"));
    }

    #[test]
    fn render() {
        let doc = fig3();
        let html = doc.render();
        assert_eq!(html, "<div id=\"e&quot;\"><script>a</script></div><br />");
    }

    #[test]
    fn empty_doc() {
        let ty = html_type();
        let doc = HtmlDoc::default();
        let t = doc.encode(&ty);
        assert_eq!(t.size(), 1);
        assert_eq!(HtmlDoc::decode(&ty, &t).unwrap(), doc);
        assert_eq!(doc.render(), "");
    }

    #[test]
    fn decode_rejects_garbage() {
        let ty = html_type();
        let c = HtmlCtors::resolve(&ty);
        // A val node at the element level is malformed.
        let bad = Tree::new(
            c.val,
            Label::single("x"),
            vec![Tree::leaf(c.nil, Label::single(""))],
        );
        assert!(HtmlDoc::decode(&ty, &bad).is_err());
    }

    #[test]
    fn element_count() {
        assert_eq!(fig3().element_count(), 3);
    }
}
