//! Serde support (feature `serde`): trees serialize structurally as
//! `{ctor, label, children}`; tree types revalidate their invariants on
//! deserialization.

use crate::tree::Tree;
use crate::ty::{Ctor, CtorId, TreeType};
use fast_smt::{Label, LabelSig};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize)]
struct TreeSer<'a> {
    ctor: CtorId,
    label: &'a Label,
    children: Vec<TreeSer<'a>>,
}

fn to_ser(t: &Tree) -> TreeSer<'_> {
    TreeSer {
        ctor: t.ctor(),
        label: t.label(),
        children: t.children().iter().map(to_ser).collect(),
    }
}

impl Serialize for Tree {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        to_ser(self).serialize(serializer)
    }
}

#[derive(Deserialize)]
struct TreeDe {
    ctor: CtorId,
    label: Label,
    children: Vec<TreeDe>,
}

fn from_de(d: TreeDe) -> Tree {
    Tree::new(
        d.ctor,
        d.label,
        d.children.into_iter().map(from_de).collect(),
    )
}

impl<'de> Deserialize<'de> for Tree {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(from_de(TreeDe::deserialize(deserializer)?))
    }
}

#[derive(Serialize, Deserialize)]
struct TreeTypeRepr {
    name: String,
    sig: LabelSig,
    ctors: Vec<(String, usize)>,
}

impl Serialize for TreeType {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        TreeTypeRepr {
            name: self.name().to_string(),
            sig: self.sig().clone(),
            ctors: self
                .ctors()
                .iter()
                .map(|c| (c.name().to_string(), c.rank()))
                .collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TreeType {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = TreeTypeRepr::deserialize(deserializer)?;
        if !repr.ctors.iter().any(|(_, r)| *r == 0) {
            return Err(D::Error::custom(
                "tree type needs at least one nullary constructor",
            ));
        }
        for i in 0..repr.ctors.len() {
            for j in (i + 1)..repr.ctors.len() {
                if repr.ctors[i].0 == repr.ctors[j].0 {
                    return Err(D::Error::custom("duplicate constructor name"));
                }
            }
        }
        Ok(TreeType::from_validated_parts(
            repr.name,
            repr.sig,
            repr.ctors
                .into_iter()
                .map(|(n, r)| Ctor::new(&n, r))
                .collect(),
        ))
    }
}
