//! # fast-trees — ranked symbolic trees
//!
//! Tree substrate for the `fast` workspace (PLDI 2014 “Fast” reproduction):
//!
//! * [`TreeType`] — ranked alphabets with label signatures (`T_σ^Σ`);
//! * [`Tree`] — immutable σ-labeled trees with s-expression
//!   printing/parsing, globally **hash-consed** ([`intern`]): every
//!   structurally distinct subtree exists once, equality/hashing are
//!   O(1), and [`TreeId`] gives a stable, never-reused identity that
//!   the runtime uses as its memo key;
//! * [`html`] — the paper's Fig. 3 encoding of unranked HTML documents
//!   into the `HtmlE` ranked type, and its inverse;
//! * [`TreeGen`] / [`HtmlGen`] — seeded workload generators.
//!
//! # Examples
//!
//! ```
//! use fast_trees::{Tree, TreeType};
//! use fast_smt::{LabelSig, Sort};
//!
//! let bt = TreeType::new("BT", LabelSig::single("i", Sort::Int),
//!                        vec![("L", 0), ("N", 2)]);
//! let t = Tree::parse(&bt, "N[1](L[2], L[3])")?;
//! assert_eq!(t.size(), 3);
//! assert_eq!(t.display(&bt).to_string(), "N[1](L[2], L[3])");
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

mod gen;
mod tree;
mod ty;

pub mod html;
pub mod intern;

mod json_impls;

pub use gen::{HtmlGen, TreeGen};
pub use html::{html_type, HtmlCtors, HtmlDoc, HtmlElem};
pub use tree::{DisplayTree, Iter, Tree, TreeId};
pub use ty::{Ctor, CtorId, TreeType};
