//! Properties of the global hash-cons table (`fast_trees::intern`):
//!
//! * **identity-by-construction** — structurally equal trees built
//!   through *independent* code paths (direct construction, a parse of
//!   the printed form, the seeded generator, the HTML encoder) intern
//!   to the same [`TreeId`] and share the canonical allocation;
//! * **injectivity** — structurally distinct trees never share an id;
//! * **thread safety** — concurrent threads racing to intern the same
//!   structures agree on every id, and the winning canonical node is
//!   shared by all of them.

use fast_smt::{Label, LabelSig, Sort, Value};
use fast_trees::{html_type, HtmlDoc, HtmlElem, HtmlGen, Tree, TreeGen, TreeType};
use proptest::prelude::*;
use std::sync::Arc;

fn mixed_type() -> Arc<TreeType> {
    TreeType::new(
        "M",
        LabelSig::new(vec![
            ("n".into(), Sort::Int),
            ("s".into(), Sort::Str),
            ("b".into(), Sort::Bool),
        ]),
        vec![("z", 0), ("u", 1), ("p", 2)],
    )
}

fn label() -> impl Strategy<Value = Label> {
    (-1000i64..1000, "[a-z\"\\\\]{0,5}", any::<bool>())
        .prop_map(|(n, s, b)| Label::new(vec![Value::Int(n), Value::Str(s), Value::Bool(b)]))
}

fn tree() -> impl Strategy<Value = Tree> {
    let ty = mixed_type();
    let z = ty.ctor_id("z").unwrap();
    let u = ty.ctor_id("u").unwrap();
    let p = ty.ctor_id("p").unwrap();
    let leaf = label().prop_map(move |l| Tree::leaf(z, l));
    leaf.prop_recursive(5, 40, 2, move |inner| {
        prop_oneof![
            (label(), inner.clone()).prop_map(move |(l, c)| Tree::new(u, l, vec![c])),
            (label(), inner.clone(), inner)
                .prop_map(move |(l, a, b)| { Tree::new(p, l, vec![a, b]) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parsing the printed form rebuilds the tree node by node through
    /// a completely different code path — yet every subtree must land
    /// on the same canonical id and allocation.
    #[test]
    fn parse_of_printed_form_interns_to_same_id(t in tree()) {
        let ty = mixed_type();
        let printed = t.display(&ty).to_string();
        let reparsed = Tree::parse(&ty, &printed).unwrap();
        prop_assert_eq!(t.id(), reparsed.id());
        prop_assert!(t.ptr_eq(&reparsed));
        // Recursively: every subtree pair agrees too.
        for (a, b) in t.iter().zip(reparsed.iter()) {
            prop_assert_eq!(a.id(), b.id());
        }
    }

    /// Two independently built trees share an id **iff** they are
    /// structurally equal (injectivity in both directions).
    #[test]
    fn ids_coincide_iff_structurally_equal(a in tree(), b in tree()) {
        let ty = mixed_type();
        let same_structure =
            a.display(&ty).to_string() == b.display(&ty).to_string();
        prop_assert_eq!(a.id() == b.id(), same_structure);
    }
}

/// The seeded generator and a parse of its output — third and fourth
/// construction paths — also converge, on trees with richer labels
/// (ints, strings with escapes, bools).
#[test]
fn generator_and_parser_converge() {
    let ty = mixed_type();
    let mut g = TreeGen::new(42).with_max_depth(6).with_int_range(-50, 50);
    for t in g.trees(&ty, 40) {
        let back = Tree::parse(&ty, &t.display(&ty).to_string()).unwrap();
        assert_eq!(t.id(), back.id());
        assert!(t.ptr_eq(&back));
    }
}

/// The HTML encoder (Fig. 3) is a fifth construction path: encoding the
/// same document twice from scratch yields the same interned tree, and
/// a shared fragment appearing under two different parents interns once.
#[test]
fn html_encoding_interns_deterministically() {
    let ty = html_type();
    let mut g = HtmlGen::new(7);
    for _ in 0..10 {
        let doc = g.doc_of_size(512);
        let e1 = doc.encode(&ty);
        let e2 = doc.encode(&ty);
        assert_eq!(e1.id(), e2.id());
        assert!(e1.ptr_eq(&e2));
    }
    // One fragment, two parents: the subtree for `frag` is the same
    // canonical node in both encodings.
    let frag = HtmlElem::new("span").with_attr("class", "x");
    let d1 = HtmlDoc::new(vec![HtmlElem::new("div").with_child(frag.clone())]);
    let d2 = HtmlDoc::new(vec![HtmlElem::new("p").with_child(frag)]);
    let (t1, t2) = (d1.encode(&ty), d2.encode(&ty));
    assert_ne!(t1.id(), t2.id());
    // div[...](span-subtree, ...) vs p[...](span-subtree, ...): find the
    // shared span node by scanning both trees for equal subtrees.
    let shared = t1
        .iter()
        .any(|a| t2.iter().any(|b| a.id() == b.id() && a.size() > 1));
    assert!(shared, "the common fragment must intern to one node");
}

/// Threads racing to intern the same structures must agree on every id;
/// distinct structures must get distinct ids even under contention.
#[test]
fn concurrent_interning_is_consistent() {
    let ty = mixed_type();
    let z = ty.ctor_id("z").unwrap();
    let u = ty.ctor_id("u").unwrap();
    const THREADS: usize = 8;
    const CHAINS: i64 = 64;

    // Each thread builds the same CHAINS unary chains (depth = seed)
    // from scratch and reports their root ids.
    let build = |seed: i64| -> Tree {
        let mut t = Tree::leaf(
            z,
            Label::new(vec![
                Value::Int(seed),
                Value::Str(String::new()),
                Value::Bool(false),
            ]),
        );
        for d in 0..(seed % 17) + 1 {
            t = Tree::new(
                u,
                Label::new(vec![
                    Value::Int(d),
                    Value::Str("x".into()),
                    Value::Bool(d % 2 == 0),
                ]),
                vec![t],
            );
        }
        t
    };

    let ids: Vec<Vec<(fast_trees::TreeId, Tree)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    (0..CHAINS)
                        .map(|s| {
                            let t = build(s);
                            (t.id(), t)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All threads agree with thread 0, and share its allocations.
    for per_thread in &ids[1..] {
        for (i, (id, t)) in per_thread.iter().enumerate() {
            assert_eq!(*id, ids[0][i].0, "chain {i}: divergent ids across threads");
            assert!(
                t.ptr_eq(&ids[0][i].1),
                "chain {i}: duplicate canonical node"
            );
        }
    }
    // Distinct structures stay distinct.
    let mut sorted: Vec<u64> = ids[0].iter().map(|(id, _)| id.as_u64()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        CHAINS as usize,
        "distinct chains shared an id"
    );
}
