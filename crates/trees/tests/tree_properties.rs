//! Property-based tests: s-expression round-trips, HTML encode/decode
//! round-trips, and structural invariants of generated trees.

use fast_smt::{Label, LabelSig, Sort, Value};
use fast_trees::{html_type, HtmlDoc, HtmlElem, Tree, TreeType};
use proptest::prelude::*;
use std::sync::Arc;

fn mixed_type() -> Arc<TreeType> {
    TreeType::new(
        "M",
        LabelSig::new(vec![
            ("n".into(), Sort::Int),
            ("s".into(), Sort::Str),
            ("b".into(), Sort::Bool),
        ]),
        vec![("z", 0), ("u", 1), ("p", 2)],
    )
}

fn label() -> impl Strategy<Value = Label> {
    (-1000i64..1000, "[a-z\"\\\\]{0,5}", any::<bool>())
        .prop_map(|(n, s, b)| Label::new(vec![Value::Int(n), Value::Str(s), Value::Bool(b)]))
}

fn tree() -> impl Strategy<Value = Tree> {
    let ty = mixed_type();
    let z = ty.ctor_id("z").unwrap();
    let u = ty.ctor_id("u").unwrap();
    let p = ty.ctor_id("p").unwrap();
    let leaf = label().prop_map(move |l| Tree::leaf(z, l));
    leaf.prop_recursive(5, 40, 2, move |inner| {
        prop_oneof![
            (label(), inner.clone()).prop_map(move |(l, c)| Tree::new(u, l, vec![c])),
            (label(), inner.clone(), inner)
                .prop_map(move |(l, a, b)| { Tree::new(p, l, vec![a, b]) }),
        ]
    })
}

fn html_elem() -> impl Strategy<Value = HtmlElem> {
    let name = "[a-z]{1,6}";
    let value = "[ -~]{0,8}"; // printable ASCII incl. quotes/backslashes
    let leaf =
        (name, proptest::collection::vec(("[a-z]{1,4}", value), 0..3)).prop_map(|(tag, attrs)| {
            let mut e = HtmlElem::new(&tag);
            for (n, v) in attrs {
                e = e.with_attr(&n, &v);
            }
            e
        });
    leaf.prop_recursive(3, 12, 3, |inner| {
        ("[a-z]{1,6}", proptest::collection::vec(inner, 0..3)).prop_map(|(tag, kids)| {
            let mut e = HtmlElem::new(&tag);
            for k in kids {
                e = e.with_child(k);
            }
            e
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Display → parse is the identity on trees (all label sorts).
    #[test]
    fn sexpr_round_trip(t in tree()) {
        let ty = mixed_type();
        let printed = t.display(&ty).to_string();
        let back = Tree::parse(&ty, &printed)
            .unwrap_or_else(|e| panic!("{e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(back, t);
    }

    /// Generated trees conform and size/depth behave.
    #[test]
    fn structural_invariants(t in tree()) {
        let ty = mixed_type();
        prop_assert!(t.conforms_to(&ty));
        prop_assert!(t.depth() <= t.size());
        prop_assert_eq!(t.iter().count(), t.size());
    }

    /// HTML documents survive encode → decode (Fig. 3 encoding is a
    /// bijection on well-formed documents).
    #[test]
    fn html_round_trip(roots in proptest::collection::vec(html_elem(), 0..3)) {
        let doc = HtmlDoc::new(roots);
        let ty = html_type();
        let encoded = doc.encode(&ty);
        prop_assert!(encoded.conforms_to(&ty));
        let back = HtmlDoc::decode(&ty, &encoded).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// Encoding size is linear-ish: nodes ≥ elements, and each attr/text
    /// character costs exactly one `val` node.
    #[test]
    fn html_encoding_size(roots in proptest::collection::vec(html_elem(), 0..3)) {
        let doc = HtmlDoc::new(roots);
        let ty = html_type();
        let encoded = doc.encode(&ty);
        fn count(e: &HtmlElem) -> (usize, usize, usize) {
            // (elements, attrs, value chars)
            let mut el = 1;
            let mut at = e.attrs.len();
            let mut ch: usize = e.attrs.iter().map(|(_, v)| v.chars().count()).sum();
            for c in &e.children {
                let (a, b, d) = count(c);
                el += a;
                at += b;
                ch += d;
            }
            (el, at, ch)
        }
        let (el, at, ch) = doc.roots.iter().map(count).fold(
            (0, 0, 0),
            |(a, b, c), (x, y, z)| (a + x, b + y, c + z),
        );
        let c = fast_trees::HtmlCtors::resolve(&ty);
        let nodes = encoded.iter().filter(|n| n.ctor() == c.node).count();
        let attrs = encoded.iter().filter(|n| n.ctor() == c.attr).count();
        let vals = encoded.iter().filter(|n| n.ctor() == c.val).count();
        prop_assert_eq!(nodes, el);
        prop_assert_eq!(attrs, at);
        prop_assert_eq!(vals, ch);
    }
}
