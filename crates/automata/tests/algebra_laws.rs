//! The Boolean algebra of STA languages, checked with the *exact*
//! decision procedures (`equivalent`, `includes`) rather than sampling:
//! commutativity, associativity, distributivity, De Morgan, double
//! complement, and the lattice laws — on a family of structurally
//! distinct automata over integer-labeled binary trees.

use fast_automata::{
    complement, determinize, difference, equivalent, includes, intersect, is_empty, is_universal,
    minimize, normalize, union, witness, Sta, StaBuilder,
};
use fast_smt::{CmpOp, Formula, LabelAlg, LabelSig, Sort, Term};
use fast_trees::{Tree, TreeGen, TreeType};
use std::sync::Arc;

fn bt() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

/// A small family of distinct languages used throughout:
/// 0: leaves all > 0      1: leaves all odd
/// 2: all trees           3: leaf values in [-2, 2], node values even
/// 4: right spine only (left children are leaves)
fn family() -> Vec<Sta> {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let x = Term::field(0);
    let mut out = Vec::new();

    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let q = b.state("pos");
    b.leaf_rule(q, l, Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)));
    b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
    out.push(b.build(q));

    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let q = b.state("odd");
    b.leaf_rule(q, l, Formula::eq(x.clone().modulo(2), Term::int(1)));
    b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
    out.push(b.build(q));

    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let q = b.state("all");
    b.leaf_rule(q, l, Formula::True);
    b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
    out.push(b.build(q));

    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let q = b.state("banded");
    b.leaf_rule(
        q,
        l,
        Formula::cmp(CmpOp::Ge, x.clone(), Term::int(-2)).and(Formula::cmp(
            CmpOp::Le,
            x.clone(),
            Term::int(2),
        )),
    );
    b.simple_rule(
        q,
        n,
        Formula::eq(x.clone().modulo(2), Term::int(0)),
        vec![Some(q), Some(q)],
    );
    out.push(b.build(q));

    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let spine = b.state("spine");
    let leaf_only = b.state("leaf");
    b.leaf_rule(leaf_only, l, Formula::True);
    b.leaf_rule(spine, l, Formula::True);
    b.simple_rule(spine, n, Formula::True, vec![Some(leaf_only), Some(spine)]);
    out.push(b.build(spine));

    out
}

#[test]
fn commutativity() {
    let fam = family();
    for a in &fam {
        for b in &fam {
            assert!(equivalent(&union(a, b), &union(b, a)).unwrap());
            assert!(equivalent(&intersect(a, b), &intersect(b, a)).unwrap());
        }
    }
}

#[test]
fn associativity() {
    let fam = family();
    let (a, b, c) = (&fam[0], &fam[1], &fam[3]);
    assert!(equivalent(&union(&union(a, b), c), &union(a, &union(b, c))).unwrap());
    assert!(equivalent(
        &intersect(&intersect(a, b), c),
        &intersect(a, &intersect(b, c))
    )
    .unwrap());
}

#[test]
fn distributivity() {
    let fam = family();
    let (a, b, c) = (&fam[0], &fam[1], &fam[4]);
    assert!(equivalent(
        &intersect(a, &union(b, c)),
        &union(&intersect(a, b), &intersect(a, c))
    )
    .unwrap());
    assert!(equivalent(
        &union(a, &intersect(b, c)),
        &intersect(&union(a, b), &union(a, c))
    )
    .unwrap());
}

#[test]
fn de_morgan() {
    let fam = family();
    let (a, b) = (&fam[0], &fam[1]);
    let lhs = complement(&union(a, b)).unwrap();
    let rhs = intersect(&complement(a).unwrap(), &complement(b).unwrap());
    assert!(equivalent(&lhs, &rhs).unwrap());
    let lhs = complement(&intersect(a, b)).unwrap();
    let rhs = union(&complement(a).unwrap(), &complement(b).unwrap());
    assert!(equivalent(&lhs, &rhs).unwrap());
}

#[test]
fn double_complement_and_lattice() {
    let fam = family();
    for a in &fam {
        let cc = complement(&complement(a).unwrap()).unwrap();
        assert!(equivalent(&cc, a).unwrap());
        // a ∩ a = a ∪ a = a
        assert!(equivalent(&intersect(a, a), a).unwrap());
        assert!(equivalent(&union(a, a), a).unwrap());
        // a ∩ ¬a = ∅; a ∪ ¬a = T
        let na = complement(a).unwrap();
        assert!(is_empty(&intersect(a, &na)).unwrap());
        assert!(is_universal(&union(a, &na)).unwrap());
        // a \ a = ∅
        assert!(is_empty(&difference(a, a).unwrap()).unwrap());
    }
}

#[test]
fn absorption_with_universal_and_empty() {
    let fam = family();
    let all = &fam[2];
    assert!(is_universal(all).unwrap());
    let none = complement(all).unwrap();
    assert!(is_empty(&none).unwrap());
    for a in &fam {
        assert!(equivalent(&intersect(a, all), a).unwrap());
        assert!(equivalent(&union(a, &none), a).unwrap());
        assert!(is_empty(&intersect(a, &none)).unwrap());
        assert!(is_universal(&union(a, all)).unwrap());
        assert!(includes(a, all).unwrap());
        assert!(includes(&none, a).unwrap());
    }
}

#[test]
fn inclusion_partial_order() {
    let fam = family();
    for a in &fam {
        for b in &fam {
            let ab = includes(a, b).unwrap();
            let ba = includes(b, a).unwrap();
            // Antisymmetry.
            if ab && ba {
                assert!(equivalent(a, b).unwrap());
            }
            // Inclusion matches emptiness of difference by construction;
            // cross-check with a witness when strict.
            if ab && !ba {
                let w = witness(&difference(b, a).unwrap()).unwrap().unwrap();
                assert!(b.accepts(&w) && !a.accepts(&w));
            }
        }
    }
}

#[test]
fn pipeline_equivalences_on_samples() {
    // normalize/determinize/minimize all preserve languages — checked
    // exactly by `equivalent` and on random samples for the Dbta form.
    let fam = family();
    let (ty, _) = bt();
    let mut g = TreeGen::new(77).with_max_depth(4).with_int_range(-4, 4);
    let samples: Vec<Tree> = (0..60).map(|_| g.tree(&ty)).collect();
    for a in &fam {
        let n = normalize(a).unwrap();
        assert!(equivalent(&n, a).unwrap());
        let m = minimize(a).unwrap();
        assert!(equivalent(&m, a).unwrap());
        let q0 = n.initial();
        let mut det = determinize(&n).unwrap();
        det.set_finals(|s| s.contains(&q0));
        for t in &samples {
            assert_eq!(det.accepts(t), a.accepts(t));
        }
        // Minimization is idempotent in state count.
        let mm = det.minimize();
        assert_eq!(mm.minimize().state_count(), mm.state_count());
    }
}

#[test]
fn minimized_is_no_larger() {
    for a in &family() {
        let n = normalize(a).unwrap();
        let q0 = n.initial();
        let mut det = determinize(&n).unwrap();
        det.set_finals(|s| s.contains(&q0));
        let min = det.minimize();
        assert!(min.state_count() <= det.state_count());
    }
}

#[test]
fn deep_chains_do_not_overflow_lookahead_evaluation() {
    // eval_states_map uses an explicit stack; a 200k-deep spine must work.
    let fam = family();
    let a = &fam[0];
    let (ty, _) = bt();
    let leaf = ty.ctor_id("L").unwrap();
    let node = ty.ctor_id("N").unwrap();
    let mut t = Tree::leaf(leaf, fast_smt::Label::single(1i64));
    for _ in 0..200_000 {
        let l = Tree::leaf(leaf, fast_smt::Label::single(2i64));
        t = Tree::new(node, fast_smt::Label::single(0i64), vec![l, t]);
    }
    let map = a.eval_states_map(&t);
    assert!(map[&t.id()].contains(&a.initial()));
    // No mem::forget needed anymore: the global interner owns every
    // node, so dropping the handle never cascades down the 200k chain.
}
