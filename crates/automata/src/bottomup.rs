//! Deterministic bottom-up symbolic tree automata.
//!
//! Normalized STAs are determinized by the symbolic subset construction:
//! guards of simultaneously applicable rules are split into *minterms*
//! (satisfiable sign-assignments, computed by [`fast_smt::minterms`]),
//! which makes the transition relation a partition of the label space for
//! every constructor and child-state tuple. Determinization enables
//! complementation and minimization, exactly as in the classical theory —
//! the paper's closure results for STAs (§1, [39]) rest on this
//! construction.

use crate::error::AutomataError;
use crate::sta::{Rule, Sta, StateId};
use fast_smt::{minterms, BoolAlg, Label, LabelAlg};
use fast_trees::{CtorId, Tree, TreeType};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Budget for determinization (number of subset states).
pub const MAX_DET_STATES: usize = 1 << 12;

/// A deterministic, complete, bottom-up symbolic tree automaton.
///
/// Every tree of the underlying type evaluates to exactly one state; the
/// `contents` of a state record which states of the source (normalized)
/// STA accept the trees evaluating to it, so any Boolean combination of
/// source languages can be designated as final.
/// Symbolic transition table: per (constructor, child-state tuple), the
/// minterm-partitioned guarded targets. Ordered so that every iteration
/// (notably [`Dbta::to_sta`]'s rule emission) is deterministic — rule
/// order feeds the flat dispatch tables serialized into `.fastc`
/// artifacts, which must be byte-reproducible.
type TransTable<A> = BTreeMap<(CtorId, Vec<usize>), Vec<(<A as BoolAlg>::Pred, usize)>>;

/// A deterministic, complete, bottom-up symbolic tree automaton.
///
/// Every tree of the underlying type evaluates to exactly one state; the
/// `contents` of a state record which states of the source (normalized)
/// STA accept the trees evaluating to it, so any Boolean combination of
/// source languages can be designated as final.
#[derive(Debug)]
pub struct Dbta<A: BoolAlg<Elem = Label> = LabelAlg> {
    ty: Arc<TreeType>,
    alg: Arc<A>,
    contents: Vec<BTreeSet<StateId>>,
    trans: TransTable<A>,
    finals: Vec<bool>,
}

impl<A: BoolAlg<Elem = Label>> Clone for Dbta<A> {
    fn clone(&self) -> Self {
        Dbta {
            ty: self.ty.clone(),
            alg: self.alg.clone(),
            contents: self.contents.clone(),
            trans: self.trans.clone(),
            finals: self.finals.clone(),
        }
    }
}

impl<A: BoolAlg<Elem = Label>> Dbta<A> {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.contents.len()
    }

    /// Total number of symbolic transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.values().map(Vec::len).sum()
    }

    /// The tree type.
    pub fn ty(&self) -> &Arc<TreeType> {
        &self.ty
    }

    /// Source-STA states accepting the trees that evaluate to `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn contents(&self, s: usize) -> &BTreeSet<StateId> {
        &self.contents[s]
    }

    /// Whether state `s` is final.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn is_final(&self, s: usize) -> bool {
        self.finals[s]
    }

    /// Sets the final-state predicate in terms of subset contents.
    pub fn set_finals(&mut self, f: impl Fn(&BTreeSet<StateId>) -> bool) {
        self.finals = self.contents.iter().map(f).collect();
    }

    /// Flips every final flag (language complement).
    pub fn complement_finals(&mut self) {
        for b in &mut self.finals {
            *b = !*b;
        }
    }

    /// Evaluates a tree to its unique state.
    ///
    /// # Panics
    ///
    /// Panics if the tree does not conform to the tree type (missing
    /// transition), which cannot happen for conforming trees.
    pub fn eval(&self, t: &Tree) -> usize {
        let kids: Vec<usize> = t.children().iter().map(|c| self.eval(c)).collect();
        let entry = self
            .trans
            .get(&(t.ctor(), kids))
            .expect("complete automaton: transition must exist");
        for (pred, target) in entry {
            if self.alg.eval(pred, t.label()) {
                return *target;
            }
        }
        unreachable!("minterms partition the label space")
    }

    /// Language membership for the current final set.
    pub fn accepts(&self, t: &Tree) -> bool {
        self.finals[self.eval(t)]
    }

    /// Converts back to a (normalized) top-down STA whose designated state
    /// accepts exactly the union of the final states' languages.
    pub fn to_sta(&self) -> Sta<A> {
        let mut out: Sta<A> = Sta::from_parts(
            self.ty.clone(),
            self.alg.clone(),
            Vec::new(),
            Vec::new(),
            StateId(0),
        );
        for i in 0..self.state_count() {
            out.push_state(format!("d{i}"));
        }
        let init = out.push_state("final".to_string());
        for ((ctor, tuple), entries) in &self.trans {
            for (pred, target) in entries {
                let rule = Rule {
                    ctor: *ctor,
                    guard: pred.clone(),
                    lookahead: tuple
                        .iter()
                        .map(|&s| [StateId(s)].into_iter().collect())
                        .collect(),
                };
                if self.finals[*target] {
                    out.push_rule(init, rule.clone());
                }
                out.push_rule(StateId(*target), rule);
            }
        }
        out.with_initial(init)
    }

    /// Moore-style minimization with respect to the current final set.
    ///
    /// Pairwise refinement: two states are distinguishable if their final
    /// flags differ, or if substituting one for the other in any child
    /// position of any transition leads (on an overlapping label minterm)
    /// to distinguishable targets.
    pub fn minimize(&self) -> Dbta<A> {
        let n = self.state_count();
        let mut distinct = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)] // symmetric index pair
        for p in 0..n {
            for q in 0..n {
                if self.finals[p] != self.finals[q] {
                    distinct[p][q] = true;
                }
            }
        }
        loop {
            let mut changed = false;
            for ((ctor, tuple), entries) in &self.trans {
                for (j, &pj) in tuple.iter().enumerate() {
                    for qj in 0..n {
                        if qj == pj || distinct[pj][qj] {
                            continue;
                        }
                        let mut alt = tuple.clone();
                        alt[j] = qj;
                        let other = match self.trans.get(&(*ctor, alt)) {
                            Some(o) => o,
                            None => continue, // unreachable tuple
                        };
                        'outer: for (pa, ta) in entries {
                            for (pb, tb) in other {
                                if distinct[*ta][*tb] && self.alg.is_sat(&self.alg.and(pa, pb)) {
                                    distinct[pj][qj] = true;
                                    distinct[qj][pj] = true;
                                    changed = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Build classes.
        let mut class = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for p in 0..n {
            if let Some(&r) = reps.iter().find(|&&r| !distinct[p][r]) {
                class[p] = class[r];
            } else {
                class[p] = reps.len();
                reps.push(p);
            }
        }
        let _class_count = reps.len();
        let mut trans: TransTable<A> = BTreeMap::new();
        for ((ctor, tuple), entries) in &self.trans {
            let key = (*ctor, tuple.iter().map(|&s| class[s]).collect::<Vec<_>>());
            let slot = trans.entry(key).or_default();
            for (pred, target) in entries {
                let tc = class[*target];
                match slot.iter_mut().find(|(_, t)| *t == tc) {
                    Some((p, _)) => *p = self.alg.or(p, pred),
                    None => slot.push((pred.clone(), tc)),
                }
            }
        }
        Dbta {
            ty: self.ty.clone(),
            alg: self.alg.clone(),
            contents: reps.iter().map(|&r| self.contents[r].clone()).collect(),
            finals: reps.iter().map(|&r| self.finals[r]).collect(),
            trans,
        }
    }
}

/// Determinizes a *normalized* STA by the symbolic subset construction.
/// All final flags start `false`; use [`Dbta::set_finals`].
///
/// # Panics
///
/// Panics if the input is not normalized.
///
/// # Errors
///
/// Returns [`AutomataError::StateLimit`] past [`MAX_DET_STATES`] subset
/// states.
pub fn determinize<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Result<Dbta<A>, AutomataError> {
    assert!(sta.is_normalized(), "determinize requires a normalized STA");
    let _span = fast_obs::span!("automata.determinize");
    let alg = sta.alg().clone();
    let ty = sta.ty().clone();

    let mut subset_ids: HashMap<BTreeSet<StateId>, usize> = HashMap::new();
    let mut contents: Vec<BTreeSet<StateId>> = Vec::new();
    let mut trans: TransTable<A> = BTreeMap::new();

    let mut intern = |set: BTreeSet<StateId>,
                      contents: &mut Vec<BTreeSet<StateId>>|
     -> Result<usize, AutomataError> {
        if let Some(&i) = subset_ids.get(&set) {
            return Ok(i);
        }
        if contents.len() >= MAX_DET_STATES {
            return Err(AutomataError::StateLimit {
                context: "determinize",
                limit: MAX_DET_STATES,
            });
        }
        let i = contents.len();
        subset_ids.insert(set.clone(), i);
        contents.push(set);
        fast_obs::count!("automata.det_states");
        Ok(i)
    };

    // Fixpoint over (ctor, tuple) keys for all tuples over discovered
    // states; starts from nullary constructors.
    loop {
        let mut added = false;
        for ctor in ty.ctor_ids() {
            let rank = ty.rank(ctor);
            let tuples = enumerate_tuples(contents.len(), rank);
            for tuple in tuples {
                let key = (ctor, tuple.clone());
                if trans.contains_key(&key) {
                    continue;
                }
                // Applicable rules: child requirement p_i must lie in the
                // subset contents of tuple[i].
                let mut rule_states: Vec<StateId> = Vec::new();
                let mut rule_guards: Vec<A::Pred> = Vec::new();
                for q in sta.states() {
                    for r in sta.rules(q) {
                        if r.ctor != ctor {
                            continue;
                        }
                        let ok = r.lookahead.iter().enumerate().all(|(i, s)| {
                            let p = s.iter().next().expect("normalized");
                            contents[tuple[i]].contains(p)
                        });
                        if ok {
                            rule_states.push(q);
                            rule_guards.push(r.guard.clone());
                        }
                    }
                }
                // Minterms over distinct guards.
                let mut uniq: Vec<A::Pred> = Vec::new();
                let mut guard_idx: Vec<usize> = Vec::with_capacity(rule_guards.len());
                for g in &rule_guards {
                    match uniq.iter().position(|u| u == g) {
                        Some(i) => guard_idx.push(i),
                        None => {
                            uniq.push(g.clone());
                            guard_idx.push(uniq.len() - 1);
                        }
                    }
                }
                let mut entries: Vec<(A::Pred, usize)> = Vec::new();
                for (signs, pred) in minterms(alg.as_ref(), &uniq) {
                    let target: BTreeSet<StateId> = rule_states
                        .iter()
                        .zip(guard_idx.iter())
                        .filter(|(_, &gi)| signs[gi])
                        .map(|(&q, _)| q)
                        .collect();
                    let id = intern(target, &mut contents)?;
                    entries.push((pred, id));
                }
                trans.insert(key, entries);
                added = true;
            }
        }
        if !added {
            break;
        }
    }

    let n = contents.len();
    Ok(Dbta {
        ty,
        alg,
        contents,
        trans,
        finals: vec![false; n],
    })
}

fn enumerate_tuples(n: usize, rank: usize) -> Vec<Vec<usize>> {
    if rank == 0 {
        return vec![Vec::new()];
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n.pow(rank as u32));
    let mut cur = vec![0usize; rank];
    loop {
        out.push(cur.clone());
        let mut i = rank;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < n {
                break;
            }
            cur[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::sta::fixtures::example2;

    #[test]
    fn tuples() {
        assert_eq!(enumerate_tuples(0, 0), vec![Vec::<usize>::new()]);
        assert_eq!(enumerate_tuples(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(enumerate_tuples(2, 2).len(), 4);
        assert!(enumerate_tuples(0, 2).is_empty());
    }

    #[test]
    fn determinize_preserves_language() {
        let (sta, _p, _o, q) = example2();
        let norm = normalize(&sta).unwrap();
        let q0 = norm.initial();
        let mut det = determinize(&norm).unwrap();
        det.set_finals(|s| s.contains(&q0));
        let ty = sta.ty().clone();
        for text in [
            "N[0](L[-4], L[3])",
            "N[0](L[-4], L[2])",
            "L[3]",
            "N[1](N[0](L[0], L[1]), L[5])",
            "N[1](L[2], N[0](L[1], L[3]))",
        ] {
            let t = Tree::parse(&ty, text).unwrap();
            assert_eq!(sta.accepts_at(q, &t), det.accepts(&t), "disagree on {text}");
        }
    }

    #[test]
    fn determinized_is_total() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        let det = determinize(&norm).unwrap();
        // Evaluate a bunch of arbitrary trees; eval panics if not total.
        let ty = sta.ty().clone();
        let mut g = fast_trees::TreeGen::new(11).with_max_depth(5);
        for _ in 0..100 {
            let t = g.tree(&ty);
            let _ = det.eval(&t);
        }
    }

    #[test]
    fn complement_via_finals() {
        let (sta, _p, _o, q) = example2();
        let norm = normalize(&sta).unwrap();
        let q0 = norm.initial();
        let mut det = determinize(&norm).unwrap();
        det.set_finals(|s| s.contains(&q0));
        det.complement_finals();
        let ty = sta.ty().clone();
        let mut g = fast_trees::TreeGen::new(13).with_max_depth(4);
        for _ in 0..100 {
            let t = g.tree(&ty);
            assert_eq!(det.accepts(&t), !sta.accepts_at(q, &t));
        }
    }

    #[test]
    fn round_trip_to_sta() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        let q0 = norm.initial();
        let mut det = determinize(&norm).unwrap();
        det.set_finals(|s| s.contains(&q0));
        let back = det.to_sta();
        assert!(back.is_normalized());
        let ty = sta.ty().clone();
        let mut g = fast_trees::TreeGen::new(17).with_max_depth(4);
        for _ in 0..100 {
            let t = g.tree(&ty);
            assert_eq!(back.accepts(&t), sta.accepts(&t));
        }
    }

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        let q0 = norm.initial();
        let mut det = determinize(&norm).unwrap();
        det.set_finals(|s| s.contains(&q0));
        let min = det.minimize();
        assert!(min.state_count() <= det.state_count());
        let ty = sta.ty().clone();
        let mut g = fast_trees::TreeGen::new(19).with_max_depth(4);
        for _ in 0..100 {
            let t = g.tree(&ty);
            assert_eq!(det.accepts(&t), min.accepts(&t));
        }
        // Minimizing twice is idempotent in size.
        assert_eq!(min.minimize().state_count(), min.state_count());
    }
}
