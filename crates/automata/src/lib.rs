//! # fast-automata — alternating symbolic tree automata
//!
//! Implementation of the STA layer of “Fast: a Transducer-Based Language
//! for Tree Manipulation” (PLDI 2014), §3.2:
//!
//! * [`Sta`] / [`StaBuilder`] — alternating STAs with per-state languages
//!   (Definitions 1–2), parametric in any effective Boolean algebra whose
//!   elements are [`fast_smt::Label`]s;
//! * [`normalize`] / [`normalize_rooted`] / [`clean`] — lazy merged-state
//!   normalization with eager unsat pruning (Definition 3, footnote 7);
//! * [`determinize`] / [`Dbta`] — symbolic bottom-up subset construction
//!   with minterm-partitioned transitions; complement and Moore
//!   minimization live on this form;
//! * [`union`], [`intersect`], [`complement`], [`difference`],
//!   [`minimize`] — the language operations of §3.5;
//! * [`is_empty`], [`witness`], [`includes`], [`equivalent`],
//!   [`is_universal`] — decision procedures (Proposition 1);
//! * [`includes_antichain`] / [`is_universal_antichain`] — antichain
//!   variants that avoid the full subset construction and return verified
//!   counterexample trees (§7's CIAA'08 open direction, implemented).
//!
//! # Examples
//!
//! ```
//! use fast_automata::{intersect, is_empty, witness, StaBuilder};
//! use fast_smt::{CmpOp, Formula, LabelAlg, LabelSig, Sort, Term};
//! use fast_trees::TreeType;
//! use std::sync::Arc;
//!
//! let bt = TreeType::new("BT", LabelSig::single("i", Sort::Int),
//!                        vec![("L", 0), ("N", 2)]);
//! let alg = Arc::new(LabelAlg::new(bt.sig().clone()));
//! let leaf = bt.ctor_id("L").unwrap();
//! let x = Term::field(0);
//!
//! // Leaves all positive…
//! let mut b = StaBuilder::new(bt.clone(), alg.clone());
//! let p = b.state("pos");
//! b.leaf_rule(p, leaf, Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)));
//! let pos = b.build(p);
//!
//! // …intersected with leaves all negative: empty.
//! let mut b = StaBuilder::new(bt.clone(), alg.clone());
//! let n = b.state("neg");
//! b.leaf_rule(n, leaf, Formula::cmp(CmpOp::Lt, x, Term::int(0)));
//! let neg = b.build(n);
//!
//! let both = intersect(&pos, &neg);
//! assert!(is_empty(&both)?);
//! assert!(witness(&pos)?.is_some());
//! # Ok::<(), fast_automata::AutomataError>(())
//! ```

#![warn(missing_docs)]

mod antichain;
mod bottomup;
mod decide;
mod error;
mod normalize;
mod ops;
mod sta;

pub use antichain::{
    includes_antichain, inclusion_counterexample, is_universal_antichain,
    universality_counterexample, MAX_ANTICHAIN,
};
pub use bottomup::{determinize, Dbta, MAX_DET_STATES};
pub use decide::{equivalent, includes, is_empty, is_universal, witness};
pub use error::AutomataError;
pub use normalize::{clean, nonempty_states, normalize, normalize_rooted, MAX_MERGED_STATES};
pub use ops::{complement, difference, intersect, minimize, union};
pub use sta::{Rule, Sta, StaBuilder, StateId};
