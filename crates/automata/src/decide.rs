//! Decision procedures on STA languages: emptiness (with witness
//! extraction), membership, inclusion, equivalence, universality
//! (§3.5's assertion language: `a ∈ l`, `l1 == l2`, `is-empty`).

use crate::error::AutomataError;
use crate::normalize::{nonempty_states, normalize};
use crate::ops::{complement, intersect};
use crate::sta::Sta;
use fast_smt::{BoolAlg, Label};
use fast_trees::Tree;

/// Emptiness of the designated language (Proposition 1).
///
/// # Errors
///
/// Propagates state-budget errors from normalization.
pub fn is_empty<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Result<bool, AutomataError> {
    let norm = normalize(sta)?;
    let ne = nonempty_states(&norm);
    Ok(!ne[norm.initial().0])
}

/// Produces a tree in the designated language, if the language is
/// non-empty and witness labels can be extracted from the guards.
///
/// The returned tree is always verified with [`Sta::accepts`]; `None`
/// therefore means "empty or could not construct", never a wrong witness.
///
/// # Errors
///
/// Propagates state-budget errors from normalization.
pub fn witness<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Result<Option<Tree>, AutomataError> {
    let norm = normalize(sta)?;
    let alg = norm.alg().clone();
    let n = norm.state_count();
    let mut best: Vec<Option<Tree>> = vec![None; n];
    // Least fixpoint, building smallest-first witnesses.
    loop {
        let mut changed = false;
        for q in norm.states() {
            if best[q.0].is_some() {
                continue;
            }
            for r in norm.rules(q) {
                let kids: Option<Vec<Tree>> = r
                    .lookahead
                    .iter()
                    .map(|s| best[s.iter().next().unwrap().0].clone())
                    .collect();
                let Some(kids) = kids else { continue };
                let Some(label) = alg.model(&r.guard) else {
                    continue;
                };
                best[q.0] = Some(Tree::new(r.ctor, label, kids));
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    match best[norm.initial().0].take() {
        Some(t) if sta.accepts(&t) => Ok(Some(t)),
        _ => Ok(None),
    }
}

/// Language inclusion `L(a) ⊆ L(b)`.
///
/// # Errors
///
/// Propagates state-budget errors.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn includes<A: BoolAlg<Elem = Label>>(a: &Sta<A>, b: &Sta<A>) -> Result<bool, AutomataError> {
    let diff = intersect(a, &complement(b)?);
    is_empty(&diff)
}

/// Language equivalence `L(a) = L(b)`.
///
/// # Errors
///
/// Propagates state-budget errors.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn equivalent<A: BoolAlg<Elem = Label>>(a: &Sta<A>, b: &Sta<A>) -> Result<bool, AutomataError> {
    Ok(includes(a, b)? && includes(b, a)?)
}

/// Universality: does the designated language contain every tree?
///
/// # Errors
///
/// Propagates state-budget errors.
pub fn is_universal<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Result<bool, AutomataError> {
    is_empty(&complement(sta)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::union;
    use crate::sta::fixtures::{bt, bt_alg, example2};
    use crate::sta::StaBuilder;
    use fast_smt::{CmpOp, Formula, Term};

    #[test]
    fn example2_nonempty_with_witness() {
        let (sta, ..) = example2();
        assert!(!is_empty(&sta).unwrap());
        let w = witness(&sta).unwrap().expect("witness exists");
        assert!(sta.accepts(&w));
    }

    #[test]
    fn contradictory_guard_is_empty() {
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let x = Term::field(0);
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("q");
        // x > 0 and x < 0 simultaneously.
        b.leaf_rule(
            q,
            l,
            Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)).and(Formula::cmp(
                CmpOp::Lt,
                x,
                Term::int(0),
            )),
        );
        let sta = b.build(q);
        assert!(is_empty(&sta).unwrap());
        assert!(witness(&sta).unwrap().is_none());
    }

    #[test]
    fn structurally_empty() {
        let ty = bt();
        let alg = bt_alg(&ty);
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("q");
        // Only an N rule that requires itself: no base case ⇒ empty.
        b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
        let sta = b.build(q);
        assert!(is_empty(&sta).unwrap());
    }

    #[test]
    fn inclusion_and_equivalence() {
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let x = Term::field(0);

        let mk = |lo: i64| {
            let mut b = StaBuilder::new(ty.clone(), alg.clone());
            let q = b.state("q");
            b.leaf_rule(q, l, Formula::cmp(CmpOp::Gt, x.clone(), Term::int(lo)));
            b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
            b.build(q)
        };
        let gt0 = mk(0);
        let gt5 = mk(5);
        assert!(includes(&gt5, &gt0).unwrap());
        assert!(!includes(&gt0, &gt5).unwrap());
        assert!(equivalent(&gt0, &gt0).unwrap());
        assert!(!equivalent(&gt0, &gt5).unwrap());
        // (leaves > 0) ∪ (leaves > 5) ≡ (leaves > 0)
        let u = union(&gt0, &gt5);
        assert!(equivalent(&u, &gt0).unwrap());
    }

    #[test]
    fn universality() {
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg.clone());
        let q = b.state("all");
        b.leaf_rule(q, l, Formula::True);
        b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
        let all = b.build(q);
        assert!(is_universal(&all).unwrap());
        let (p, ..) = example2();
        assert!(!is_universal(&p).unwrap());
    }
}
