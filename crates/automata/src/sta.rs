//! Alternating symbolic tree automata (Definition 1 of the paper).

use fast_smt::{BoolAlg, Label, LabelAlg};
use fast_trees::{CtorId, Tree, TreeType};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Identifier of a state within its automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A transition rule `(q, f, φ, ℓ̄)`: from state `q`, reading a node built
/// with constructor `f` whose label satisfies the guard `φ`, each child `i`
/// must be accepted by *every* state in the lookahead set `ℓ̄ᵢ`
/// (conjunction; the empty set is unconstrained).
#[derive(Debug)]
pub struct Rule<A: BoolAlg = LabelAlg> {
    /// Constructor this rule matches.
    pub ctor: CtorId,
    /// Guard over the node label.
    pub guard: A::Pred,
    /// Per-child conjunctive state sets (`lookahead.len() == rank(ctor)`).
    pub lookahead: Vec<BTreeSet<StateId>>,
}

/// An alternating symbolic tree automaton over trees of one [`TreeType`],
/// with guards drawn from an effective Boolean algebra `A`.
///
/// Unlike textbook presentations there is no distinguished final-state set:
/// each state `q` denotes a language `L_q` (Definition 2), and operations
/// take or return *designated* states. [`Sta::initial`] records the
/// designated state of automata produced by the library's operations.
///
/// # Examples
///
/// ```
/// use fast_automata::StaBuilder;
/// use fast_smt::{Formula, LabelAlg, LabelSig, Sort, Term};
/// use fast_trees::{Tree, TreeType};
/// use std::sync::Arc;
///
/// // lang p: BT { L() where i > 0 | N(x, y) given (p x) (p y) }
/// let bt = TreeType::new("BT", LabelSig::single("i", Sort::Int),
///                        vec![("L", 0), ("N", 2)]);
/// let alg = Arc::new(LabelAlg::new(bt.sig().clone()));
/// let mut b = StaBuilder::new(bt.clone(), alg);
/// let p = b.state("p");
/// let gt0 = Formula::cmp(fast_smt::CmpOp::Gt, Term::field(0), Term::int(0));
/// b.leaf_rule(p, bt.ctor_id("L").unwrap(), gt0);
/// b.simple_rule(p, bt.ctor_id("N").unwrap(), Formula::True, vec![Some(p), Some(p)]);
/// let sta = b.build(p);
/// assert!(sta.accepts(&Tree::parse(&bt, "N[0](L[1], L[2])").unwrap()));
/// assert!(!sta.accepts(&Tree::parse(&bt, "N[0](L[1], L[0])").unwrap()));
/// ```
#[derive(Debug)]
pub struct Sta<A: BoolAlg<Elem = Label> = LabelAlg> {
    ty: Arc<TreeType>,
    alg: Arc<A>,
    names: Vec<String>,
    rules: Vec<Vec<Rule<A>>>,
    initial: StateId,
}

impl<A: BoolAlg> Clone for Rule<A> {
    fn clone(&self) -> Self {
        Rule {
            ctor: self.ctor,
            guard: self.guard.clone(),
            lookahead: self.lookahead.clone(),
        }
    }
}

impl<A: BoolAlg> PartialEq for Rule<A> {
    fn eq(&self, other: &Self) -> bool {
        self.ctor == other.ctor && self.guard == other.guard && self.lookahead == other.lookahead
    }
}

impl<A: BoolAlg> Eq for Rule<A> {}

impl<A: BoolAlg<Elem = Label>> Clone for Sta<A> {
    fn clone(&self) -> Self {
        Sta {
            ty: self.ty.clone(),
            alg: self.alg.clone(),
            names: self.names.clone(),
            rules: self.rules.clone(),
            initial: self.initial,
        }
    }
}

impl<A: BoolAlg<Elem = Label>> Sta<A> {
    /// The tree type this automaton runs over.
    pub fn ty(&self) -> &Arc<TreeType> {
        &self.ty
    }

    /// The label algebra.
    pub fn alg(&self) -> &Arc<A> {
        &self.alg
    }

    /// The designated (initial) state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.rules.len()
    }

    /// Total number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.rules.len()).map(StateId)
    }

    /// Debug name of a state.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.names[q.0]
    }

    /// Rules out of a state (`δ(q)`).
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn rules(&self, q: StateId) -> &[Rule<A>] {
        &self.rules[q.0]
    }

    /// True if every lookahead set of every rule is a singleton
    /// (Definition 3; the output shape of [`crate::normalize`]).
    pub fn is_normalized(&self) -> bool {
        self.rules
            .iter()
            .flatten()
            .all(|r| r.lookahead.iter().all(|s| s.len() == 1))
    }

    /// Bottom-up evaluation: for each node of `t` the set of states whose
    /// language contains the subtree; returns the set for the root.
    ///
    /// This implements Definition 2 directly, including alternation (every
    /// state in a lookahead set must accept the child).
    pub fn eval_states(&self, t: &Tree) -> BTreeSet<StateId> {
        let child_sets: Vec<BTreeSet<StateId>> =
            t.children().iter().map(|c| self.eval_states(c)).collect();
        let mut out = BTreeSet::new();
        for q in self.states() {
            'rules: for r in self.rules(q) {
                if r.ctor != t.ctor() {
                    continue;
                }
                if !self.alg.eval(&r.guard, t.label()) {
                    continue;
                }
                for (i, la) in r.lookahead.iter().enumerate() {
                    if !la.is_subset(&child_sets[i]) {
                        continue 'rules;
                    }
                }
                out.insert(q);
                break;
            }
        }
        out
    }

    /// Bottom-up evaluation over the whole tree with sharing-aware
    /// memoization: returns, for every distinct subtree (keyed by its
    /// interned [`fast_trees::TreeId`]), the set of accepting states.
    /// Structurally equal subtrees share one id — and therefore one
    /// entry — even when they were built independently. Used by the
    /// transducer crate to check rule lookaheads in a single pass.
    pub fn eval_states_map(
        &self,
        t: &Tree,
    ) -> std::collections::HashMap<fast_trees::TreeId, BTreeSet<StateId>> {
        let mut memo = std::collections::HashMap::new();
        self.eval_into(t, &mut memo);
        memo
    }

    // Explicit post-order stack: deep sibling/child chains (arbitrarily
    // long HTML documents) must not overflow the call stack.
    fn eval_into(
        &self,
        root: &Tree,
        memo: &mut std::collections::HashMap<fast_trees::TreeId, BTreeSet<StateId>>,
    ) {
        let mut stack: Vec<(&Tree, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if memo.contains_key(&t.id()) {
                continue;
            }
            if !expanded {
                stack.push((t, true));
                for c in t.children() {
                    stack.push((c, false));
                }
                continue;
            }
            let mut out = BTreeSet::new();
            for q in self.states() {
                'rules: for r in self.rules(q) {
                    if r.ctor != t.ctor() || !self.alg.eval(&r.guard, t.label()) {
                        continue;
                    }
                    for (i, la) in r.lookahead.iter().enumerate() {
                        let child_states = &memo[&t.child(i).id()];
                        if !la.is_subset(child_states) {
                            continue 'rules;
                        }
                    }
                    out.insert(q);
                    break;
                }
            }
            memo.insert(t.id(), out);
        }
    }

    /// Membership in the designated state's language.
    pub fn accepts(&self, t: &Tree) -> bool {
        self.accepts_at(self.initial, t)
    }

    /// Membership in `L_q`.
    pub fn accepts_at(&self, q: StateId, t: &Tree) -> bool {
        self.eval_states(t).contains(&q)
    }

    /// Re-designates the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn with_initial(mut self, q: StateId) -> Self {
        assert!(q.0 < self.rules.len(), "state out of range");
        self.initial = q;
        self
    }

    /// Low-level constructor from raw parts, for libraries building
    /// automata programmatically (e.g. domain automata of transducers).
    /// Most users should prefer [`StaBuilder`].
    pub fn from_parts(
        ty: Arc<TreeType>,
        alg: Arc<A>,
        names: Vec<String>,
        rules: Vec<Vec<Rule<A>>>,
        initial: StateId,
    ) -> Self {
        debug_assert_eq!(names.len(), rules.len());
        Sta {
            ty,
            alg,
            names,
            rules,
            initial,
        }
    }

    /// Checks two automata share a tree type (same structure) — required by
    /// the binary operations.
    pub(crate) fn assert_compatible(&self, other: &Sta<A>) {
        assert_eq!(
            self.ty, other.ty,
            "automata operate over different tree types"
        );
    }

    /// Copies another automaton's states into this one's state space,
    /// returning the offset added to the other's state ids. Both automata
    /// must share the tree type. Used by binary language operations and by
    /// the transducer layer to combine lookahead automata.
    ///
    /// # Panics
    ///
    /// Panics if the tree types differ.
    pub fn absorb(&mut self, other: &Sta<A>) -> usize {
        self.assert_compatible(other);
        let offset = self.rules.len();
        for (i, rs) in other.rules.iter().enumerate() {
            self.names.push(format!("{}'", other.names[i]));
            self.rules.push(
                rs.iter()
                    .map(|r| Rule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|s| s.iter().map(|q| StateId(q.0 + offset)).collect())
                            .collect(),
                    })
                    .collect(),
            );
        }
        offset
    }

    /// Appends a fresh state, returning its id (low-level API; see
    /// [`StaBuilder`] for the ergonomic path).
    pub fn push_state(&mut self, name: String) -> StateId {
        self.names.push(name);
        self.rules.push(Vec::new());
        StateId(self.rules.len() - 1)
    }

    /// Appends a rule to a state (low-level API).
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch.
    pub fn push_rule(&mut self, q: StateId, rule: Rule<A>) {
        assert_eq!(
            rule.lookahead.len(),
            self.ty.rank(rule.ctor),
            "lookahead arity must equal constructor rank"
        );
        self.rules[q.0].push(rule);
    }
}

impl<A: BoolAlg<Elem = Label>> fmt::Display for Sta<A>
where
    A::Pred: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "STA over {} ({} states, {} rules, initial {})",
            self.ty.name(),
            self.state_count(),
            self.rule_count(),
            self.initial
        )?;
        for q in self.states() {
            for r in self.rules(q) {
                write!(
                    f,
                    "  {}[{}] --{}, {}--> (",
                    q,
                    self.names[q.0],
                    self.ty.ctor_name(r.ctor),
                    r.guard
                )?;
                for (i, la) in r.lookahead.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{{")?;
                    for (j, s) in la.iter().enumerate() {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{s}")?;
                    }
                    write!(f, "}}")?;
                }
                writeln!(f, ")")?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Sta`]s.
#[derive(Debug)]
pub struct StaBuilder<A: BoolAlg<Elem = Label> = LabelAlg> {
    sta: Sta<A>,
}

impl<A: BoolAlg<Elem = Label>> StaBuilder<A> {
    /// Starts building an automaton over `ty` with algebra `alg`.
    pub fn new(ty: Arc<TreeType>, alg: Arc<A>) -> Self {
        StaBuilder {
            sta: Sta {
                ty,
                alg,
                names: Vec::new(),
                rules: Vec::new(),
                initial: StateId(0),
            },
        }
    }

    /// Declares a state.
    pub fn state(&mut self, name: &str) -> StateId {
        self.sta.push_state(name.to_string())
    }

    /// Adds a rule `(q, f, φ, ℓ̄)`.
    ///
    /// The guard is anything convertible into the algebra's predicate
    /// type — for [`LabelAlg`](fast_smt::LabelAlg) a plain
    /// [`Formula`](fast_smt::Formula) works and is interned on the way in.
    ///
    /// # Panics
    ///
    /// Panics if the lookahead arity does not match the constructor rank.
    pub fn rule(
        &mut self,
        q: StateId,
        ctor: CtorId,
        guard: impl Into<A::Pred>,
        lookahead: Vec<BTreeSet<StateId>>,
    ) {
        self.sta.push_rule(
            q,
            Rule {
                ctor,
                guard: guard.into(),
                lookahead,
            },
        );
    }

    /// Adds a rule whose per-child lookahead is at most one state
    /// (`None` = unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if the lookahead arity does not match the constructor rank.
    pub fn simple_rule(
        &mut self,
        q: StateId,
        ctor: CtorId,
        guard: impl Into<A::Pred>,
        lookahead: Vec<Option<StateId>>,
    ) {
        let la = lookahead
            .into_iter()
            .map(|o| o.into_iter().collect())
            .collect();
        self.rule(q, ctor, guard, la);
    }

    /// Adds a leaf rule (nullary constructor).
    ///
    /// # Panics
    ///
    /// Panics if the constructor is not nullary.
    pub fn leaf_rule(&mut self, q: StateId, ctor: CtorId, guard: impl Into<A::Pred>) {
        self.rule(q, ctor, guard, Vec::new());
    }

    /// Finishes, designating `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range or no state was declared.
    pub fn build(self, initial: StateId) -> Sta<A> {
        assert!(
            initial.0 < self.sta.rules.len(),
            "initial state out of range"
        );
        let mut sta = self.sta;
        sta.initial = initial;
        sta
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use fast_smt::{CmpOp, Formula, LabelSig, Sort, Term};

    pub fn bt() -> Arc<TreeType> {
        TreeType::new(
            "BT",
            LabelSig::single("i", Sort::Int),
            vec![("L", 0), ("N", 2)],
        )
    }

    pub fn bt_alg(ty: &TreeType) -> Arc<LabelAlg> {
        Arc::new(LabelAlg::new(ty.sig().clone()))
    }

    /// The paper's Example 2 automaton: states p (positive leaves),
    /// o (odd leaves), q (first subtree unconstrained, second in p ∩ o).
    pub fn example2() -> (Sta, StateId, StateId, StateId) {
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let p = b.state("p");
        let o = b.state("o");
        let q = b.state("q");
        let x = Term::field(0);
        b.leaf_rule(p, l, Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)));
        b.simple_rule(p, n, Formula::True, vec![Some(p), Some(p)]);
        b.leaf_rule(o, l, Formula::eq(x.clone().modulo(2), Term::int(1)));
        b.simple_rule(o, n, Formula::True, vec![Some(o), Some(o)]);
        b.rule(
            q,
            n,
            Formula::True,
            vec![BTreeSet::new(), [p, o].into_iter().collect()],
        );
        (b.build(q), p, o, q)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn example2_semantics() {
        let (sta, p, o, q) = example2();
        let ty = sta.ty().clone();
        let t = |s: &str| Tree::parse(&ty, s).unwrap();

        // p: all leaves positive.
        assert!(sta.accepts_at(p, &t("L[3]")));
        assert!(!sta.accepts_at(p, &t("L[0]")));
        assert!(sta.accepts_at(p, &t("N[0](L[1], L[2])")));
        assert!(!sta.accepts_at(p, &t("N[0](L[1], L[-2])")));

        // o: all leaves odd (note -3 % 2 == 1 with Euclidean semantics).
        assert!(sta.accepts_at(o, &t("L[-3]")));
        assert!(!sta.accepts_at(o, &t("L[2]")));

        // q: only N nodes; second subtree must be in p ∩ o.
        assert!(!sta.accepts_at(q, &t("L[1]"))); // no L rule for q
        assert!(sta.accepts_at(q, &t("N[0](L[-4], L[3])")));
        assert!(!sta.accepts_at(q, &t("N[0](L[-4], L[2])"))); // 2 even
        assert!(!sta.accepts_at(q, &t("N[0](L[-4], L[-3])"))); // -3 not positive
        assert!(sta.accepts(&t("N[0](L[-4], L[3])"))); // initial is q
    }

    #[test]
    fn normalized_check() {
        let (sta, ..) = example2();
        assert!(!sta.is_normalized()); // q's rule has a 2-element and an empty set
    }

    #[test]
    fn eval_states_collects_everything() {
        let (sta, p, o, _q) = example2();
        let ty = sta.ty().clone();
        let t = Tree::parse(&ty, "L[3]").unwrap();
        let states = sta.eval_states(&t);
        assert!(states.contains(&p) && states.contains(&o));
        assert_eq!(states.len(), 2);
    }

    #[test]
    fn display_contains_rules() {
        let (sta, ..) = example2();
        let s = sta.to_string();
        assert!(s.contains("STA over BT"));
        assert!(s.contains("--N, true-->"));
    }

    #[test]
    #[should_panic(expected = "lookahead arity")]
    fn arity_mismatch_panics() {
        let ty = bt();
        let alg = bt_alg(&ty);
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("q");
        b.simple_rule(q, n, fast_smt::Formula::True, vec![Some(q)]); // rank 2!
    }
}
