//! Normalization of alternating STAs (§3.2 of the paper).
//!
//! A normalized STA has singleton lookahead sets everywhere (Definition 3).
//! Following footnote 7, merged rules are computed *lazily* from the
//! designated root set, merged rules with unsatisfiable guards are
//! eliminated eagerly, and the result is cleaned by removing states that
//! accept no tree.

use crate::error::AutomataError;
use crate::sta::{Rule, Sta, StateId};
use fast_smt::{BoolAlg, Label};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Hard cap on the number of merged states materialized during
/// normalization; exceeding it returns
/// [`AutomataError::StateLimit`].
pub const MAX_MERGED_STATES: usize = 1 << 14;

/// Normalizes `sta`, rooting the construction at its designated state.
///
/// The result accepts exactly the same language at its designated state
/// and satisfies [`Sta::is_normalized`].
///
/// # Errors
///
/// Returns [`AutomataError::StateLimit`] if more than
/// [`MAX_MERGED_STATES`] merged states are needed.
pub fn normalize<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Result<Sta<A>, AutomataError> {
    let root: BTreeSet<StateId> = [sta.initial()].into_iter().collect();
    let (out, roots) = normalize_rooted(sta, vec![root])?;
    Ok(out.with_initial(roots[0]))
}

/// Normalizes with explicit root sets (used by language intersection, by
/// determinization, and by the transducer crate for lookahead handling).
/// Returns the normalized automaton plus the state corresponding to each
/// requested root set.
///
/// # Errors
///
/// Returns [`AutomataError::StateLimit`] if the merged-state space
/// exceeds [`MAX_MERGED_STATES`].
pub fn normalize_rooted<A: BoolAlg<Elem = Label>>(
    sta: &Sta<A>,
    roots: Vec<BTreeSet<StateId>>,
) -> Result<(Sta<A>, Vec<StateId>), AutomataError> {
    let alg = sta.alg().clone();
    let mut out: Sta<A> = Sta::from_parts(
        sta.ty().clone(),
        alg.clone(),
        Vec::new(),
        Vec::new(),
        StateId(0),
    );
    let mut ids: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
    let mut queue: VecDeque<BTreeSet<StateId>> = VecDeque::new();

    fn get<A: BoolAlg<Elem = Label>>(
        sta: &Sta<A>,
        set: &BTreeSet<StateId>,
        ids: &mut HashMap<BTreeSet<StateId>, StateId>,
        out: &mut Sta<A>,
        queue: &mut VecDeque<BTreeSet<StateId>>,
    ) -> Result<StateId, AutomataError> {
        if let Some(&id) = ids.get(set) {
            return Ok(id);
        }
        if ids.len() >= MAX_MERGED_STATES {
            return Err(AutomataError::StateLimit {
                context: "normalize",
                limit: MAX_MERGED_STATES,
            });
        }
        let name = if set.is_empty() {
            "⊤".to_string()
        } else {
            let names: Vec<&str> = set.iter().map(|&q| sta.state_name(q)).collect();
            names.join("&")
        };
        let id = out.push_state(name);
        ids.insert(set.clone(), id);
        queue.push_back(set.clone());
        Ok(id)
    }

    let mut root_ids = Vec::with_capacity(roots.len());
    for r in &roots {
        root_ids.push(get(sta, r, &mut ids, &mut out, &mut queue)?);
    }

    while let Some(set) = queue.pop_front() {
        let me = ids[&set];
        for ctor in sta.ty().ctor_ids() {
            let rank = sta.ty().rank(ctor);
            if set.is_empty() {
                // δ_f(∅): the universal state — one unconstrained rule per
                // constructor, children again universal.
                let top = get(sta, &BTreeSet::new(), &mut ids, &mut out, &mut queue)?;
                out.push_rule(
                    me,
                    Rule {
                        ctor,
                        guard: alg.tt(),
                        lookahead: (0..rank).map(|_| [top].into_iter().collect()).collect(),
                    },
                );
                continue;
            }
            // Cartesian product of per-state rule choices, with incremental
            // guard conjunction and eager unsat pruning.
            let members: Vec<StateId> = set.iter().copied().collect();
            let mut partial: Vec<(A::Pred, Vec<BTreeSet<StateId>>)> =
                vec![(alg.tt(), (0..rank).map(|_| BTreeSet::new()).collect())];
            let mut dead = false;
            for &p in &members {
                let choices: Vec<&Rule<A>> =
                    sta.rules(p).iter().filter(|r| r.ctor == ctor).collect();
                if choices.is_empty() {
                    dead = true;
                    break;
                }
                let mut next = Vec::new();
                for (guard, las) in &partial {
                    for r in &choices {
                        let g = alg.and(guard, &r.guard);
                        if !alg.is_sat(&g) {
                            continue;
                        }
                        let merged: Vec<BTreeSet<StateId>> = las
                            .iter()
                            .zip(r.lookahead.iter())
                            .map(|(a, b)| a.union(b).copied().collect())
                            .collect();
                        next.push((g, merged));
                    }
                }
                partial = next;
                if partial.is_empty() {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            for (guard, las) in partial {
                let mut lookahead = Vec::with_capacity(rank);
                for la in &las {
                    let child = get(sta, la, &mut ids, &mut out, &mut queue)?;
                    lookahead.push([child].into_iter().collect());
                }
                out.push_rule(
                    me,
                    Rule {
                        ctor,
                        guard,
                        lookahead,
                    },
                );
            }
        }
    }

    Ok((out, root_ids))
}

/// Computes, for a *normalized* STA, which states accept at least one tree
/// (least fixpoint).
///
/// # Panics
///
/// Panics if the automaton is not normalized.
pub fn nonempty_states<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Vec<bool> {
    assert!(
        sta.is_normalized(),
        "nonempty_states requires a normalized STA"
    );
    let alg = sta.alg();
    let n = sta.state_count();
    let mut nonempty = vec![false; n];
    loop {
        let mut changed = false;
        for q in sta.states() {
            if nonempty[q.0] {
                continue;
            }
            for r in sta.rules(q) {
                let kids_ok = r
                    .lookahead
                    .iter()
                    .all(|s| nonempty[s.iter().next().unwrap().0]);
                if kids_ok && alg.is_sat(&r.guard) {
                    nonempty[q.0] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return nonempty;
        }
    }
}

/// Removes rules that depend on empty states (cleaning step of footnote 7).
/// State ids are preserved; the designated state keeps its language.
pub fn clean<A: BoolAlg<Elem = Label>>(sta: &Sta<A>) -> Sta<A> {
    if !sta.is_normalized() {
        return sta.clone();
    }
    let nonempty = nonempty_states(sta);
    let mut out: Sta<A> = Sta::from_parts(
        sta.ty().clone(),
        sta.alg().clone(),
        Vec::new(),
        Vec::new(),
        sta.initial(),
    );
    for q in sta.states() {
        out.push_state(sta.state_name(q).to_string());
    }
    for q in sta.states() {
        for r in sta.rules(q) {
            if r.lookahead
                .iter()
                .all(|s| nonempty[s.iter().next().unwrap().0])
                && sta.alg().is_sat(&r.guard)
            {
                out.push_rule(q, r.clone());
            }
        }
    }
    // Note: no with_initial — the automaton may legitimately have zero
    // states (e.g. a domain automaton with no child requirements), and
    // from_parts above already carried the designated state over.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::fixtures::example2;
    use fast_trees::Tree;

    #[test]
    fn normalize_preserves_language() {
        let (sta, _p, _o, _q) = example2();
        let norm = normalize(&sta).unwrap();
        assert!(norm.is_normalized());
        let ty = sta.ty().clone();
        for text in [
            "N[0](L[-4], L[3])",
            "N[0](L[-4], L[2])",
            "N[0](L[1], L[-3])",
            "L[1]",
            "N[5](N[1](L[1], L[3]), L[5])",
            "N[5](L[0], L[5])",
        ] {
            let t = Tree::parse(&ty, text).unwrap();
            assert_eq!(sta.accepts(&t), norm.accepts(&t), "disagree on {text}");
        }
    }

    #[test]
    fn normalize_merges_p_and_o() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        // Root is {q}; its N-rule's second child is the merged state {p,o};
        // expanding that requires L-rules with guard (x>0 ∧ odd x).
        let merged = norm
            .states()
            .find(|&s| norm.state_name(s).contains('&'))
            .expect("merged state p&o");
        let ty = sta.ty().clone();
        assert!(norm.accepts_at(merged, &Tree::parse(&ty, "L[3]").unwrap()));
        assert!(!norm.accepts_at(merged, &Tree::parse(&ty, "L[2]").unwrap()));
        assert!(!norm.accepts_at(merged, &Tree::parse(&ty, "L[-3]").unwrap()));
    }

    #[test]
    fn empty_set_state_is_universal() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        let top = norm
            .states()
            .find(|&s| norm.state_name(s) == "⊤")
            .expect("universal state");
        let ty = sta.ty().clone();
        for text in ["L[0]", "L[7]", "N[1](L[0], L[0])"] {
            assert!(norm.accepts_at(top, &Tree::parse(&ty, text).unwrap()));
        }
    }

    #[test]
    fn nonempty_fixpoint() {
        let (sta, ..) = example2();
        let norm = normalize(&sta).unwrap();
        let ne = nonempty_states(&norm);
        // Everything in this automaton is inhabited.
        assert!(ne.iter().all(|&b| b));
    }

    #[test]
    fn clean_drops_dead_rules() {
        use crate::sta::fixtures::{bt, bt_alg};
        use crate::sta::StaBuilder;
        use fast_smt::Formula;
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg);
        let dead = b.state("dead"); // no rules at all: empty language
        let q = b.state("q");
        b.leaf_rule(q, l, Formula::True);
        b.simple_rule(q, n, Formula::True, vec![Some(dead), Some(q)]);
        let sta = b.build(q);
        let cleaned = clean(&sta);
        // The N-rule depended on the empty state `dead` and must be gone.
        assert_eq!(cleaned.rules(q).len(), 1);
        assert!(cleaned.accepts(&Tree::parse(&ty, "L[0]").unwrap()));
        assert!(!cleaned.accepts(&Tree::parse(&ty, "N[0](L[0], L[0])").unwrap()));
    }
}
