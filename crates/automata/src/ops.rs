//! Boolean operations on STA languages (§3.5: `intersect`, `union`,
//! `complement`, `difference`, `minimize`).
//!
//! Binary operations combine the two automata into one state space; the
//! result's designated state denotes the combined language. Complement and
//! minimization go through determinization ([`crate::bottomup`]).

use crate::bottomup::determinize;
use crate::error::AutomataError;
use crate::normalize::{clean, normalize};
use crate::sta::{Rule, Sta, StateId};
use fast_smt::{BoolAlg, Label};
use std::collections::BTreeSet;

/// Union: `L(result) = L(a) ∪ L(b)`.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn union<A: BoolAlg<Elem = Label>>(a: &Sta<A>, b: &Sta<A>) -> Sta<A> {
    let mut out = a.clone();
    let offset = out.absorb(b);
    let init = out.push_state("∪".to_string());
    for r in a.rules(a.initial()).to_vec() {
        out.push_rule(init, r);
    }
    for r in b.rules(b.initial()).to_vec() {
        out.push_rule(
            init,
            Rule {
                ctor: r.ctor,
                guard: r.guard,
                lookahead: r
                    .lookahead
                    .into_iter()
                    .map(|s| s.into_iter().map(|q| StateId(q.0 + offset)).collect())
                    .collect(),
            },
        );
    }
    out.with_initial(init)
}

/// Intersection: `L(result) = L(a) ∩ L(b)`, via alternation — pairs of
/// root rules are merged (guards conjoined, lookaheads unioned), exactly
/// the paper's `!` merge restricted to the root.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn intersect<A: BoolAlg<Elem = Label>>(a: &Sta<A>, b: &Sta<A>) -> Sta<A> {
    let _span = fast_obs::span!("automata.intersect");
    let alg = a.alg().clone();
    let mut out = a.clone();
    let offset = out.absorb(b);
    let init = out.push_state("∩".to_string());
    for ra in a.rules(a.initial()) {
        for rb in b.rules(b.initial()) {
            if ra.ctor != rb.ctor {
                continue;
            }
            let guard = alg.and(&ra.guard, &rb.guard);
            if !alg.is_sat(&guard) {
                continue;
            }
            let lookahead: Vec<BTreeSet<StateId>> = ra
                .lookahead
                .iter()
                .zip(rb.lookahead.iter())
                .map(|(x, y)| {
                    x.iter()
                        .copied()
                        .chain(y.iter().map(|q| StateId(q.0 + offset)))
                        .collect()
                })
                .collect();
            fast_obs::count!("automata.product_states");
            out.push_rule(
                init,
                Rule {
                    ctor: ra.ctor,
                    guard,
                    lookahead,
                },
            );
        }
    }
    out.with_initial(init)
}

/// Complement: `L(result) = T_σ^Σ \ L(a)`.
///
/// Route: normalize → clean → determinize → flip finals → back to an STA.
///
/// # Errors
///
/// Propagates state-budget errors from normalization/determinization.
pub fn complement<A: BoolAlg<Elem = Label>>(a: &Sta<A>) -> Result<Sta<A>, AutomataError> {
    let norm = clean(&normalize(a)?);
    let q0 = norm.initial();
    let mut det = determinize(&norm)?;
    det.set_finals(|s| !s.contains(&q0));
    Ok(det.to_sta())
}

/// Difference: `L(result) = L(a) \ L(b)`.
///
/// # Errors
///
/// Propagates state-budget errors from complementation.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn difference<A: BoolAlg<Elem = Label>>(
    a: &Sta<A>,
    b: &Sta<A>,
) -> Result<Sta<A>, AutomataError> {
    Ok(intersect(a, &complement(b)?))
}

/// Minimization: returns a normalized, deterministic-bottom-up-backed STA
/// with the minimal number of states for `L(a)`.
///
/// # Errors
///
/// Propagates state-budget errors.
pub fn minimize<A: BoolAlg<Elem = Label>>(a: &Sta<A>) -> Result<Sta<A>, AutomataError> {
    let norm = clean(&normalize(a)?);
    let q0 = norm.initial();
    let mut det = determinize(&norm)?;
    det.set_finals(|s| s.contains(&q0));
    Ok(det.minimize().to_sta())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::fixtures::{bt, bt_alg, example2};
    use crate::sta::StaBuilder;
    use fast_smt::{CmpOp, Formula, Term};
    use fast_trees::{Tree, TreeGen};

    /// Leaves-all-positive (p) and leaves-all-odd (o) as separate automata.
    fn p_and_o() -> (Sta, Sta) {
        let ty = bt();
        let alg = bt_alg(&ty);
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let x = Term::field(0);

        let mut b = StaBuilder::new(ty.clone(), alg.clone());
        let p = b.state("p");
        b.leaf_rule(p, l, Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)));
        b.simple_rule(p, n, Formula::True, vec![Some(p), Some(p)]);
        let pa = b.build(p);

        let mut b = StaBuilder::new(ty, alg);
        let o = b.state("o");
        b.leaf_rule(o, l, Formula::eq(x.modulo(2), Term::int(1)));
        b.simple_rule(o, n, Formula::True, vec![Some(o), Some(o)]);
        let ob = b.build(o);
        (pa, ob)
    }

    fn agree(f: impl Fn(&Tree) -> bool, sta: &Sta, seed: u64) {
        let ty = sta.ty().clone();
        let mut g = TreeGen::new(seed).with_max_depth(4).with_int_range(-4, 4);
        for _ in 0..150 {
            let t = g.tree(&ty);
            assert_eq!(sta.accepts(&t), f(&t), "disagree on {}", t.display(&ty));
        }
    }

    fn all_leaves(t: &Tree, pred: &dyn Fn(i64) -> bool) -> bool {
        if t.children().is_empty() {
            pred(t.label().get(0).as_int().unwrap())
        } else {
            t.children().iter().all(|c| all_leaves(c, pred))
        }
    }

    #[test]
    fn union_semantics() {
        let (p, o) = p_and_o();
        let u = union(&p, &o);
        agree(
            |t| all_leaves(t, &|n| n > 0) || all_leaves(t, &|n| n.rem_euclid(2) == 1),
            &u,
            101,
        );
    }

    #[test]
    fn intersect_semantics() {
        let (p, o) = p_and_o();
        let i = intersect(&p, &o);
        agree(
            |t| all_leaves(t, &|n| n > 0) && all_leaves(t, &|n| n.rem_euclid(2) == 1),
            &i,
            103,
        );
    }

    #[test]
    fn complement_semantics() {
        let (p, _) = p_and_o();
        let c = complement(&p).unwrap();
        agree(|t| !all_leaves(t, &|n| n > 0), &c, 107);
    }

    #[test]
    fn difference_semantics() {
        let (p, o) = p_and_o();
        let d = difference(&p, &o).unwrap();
        agree(
            |t| all_leaves(t, &|n| n > 0) && !all_leaves(t, &|n| n.rem_euclid(2) == 1),
            &d,
            109,
        );
    }

    #[test]
    fn minimize_preserves_language() {
        let (sta, ..) = example2();
        let m = minimize(&sta).unwrap();
        let ty = sta.ty().clone();
        let mut g = TreeGen::new(113).with_max_depth(4).with_int_range(-4, 4);
        for _ in 0..150 {
            let t = g.tree(&ty);
            assert_eq!(sta.accepts(&t), m.accepts(&t));
        }
    }

    #[test]
    fn union_with_example2_q() {
        // Mixing automata with multi-state spaces exercises `absorb`.
        let (e2, _p, _o, _q) = example2();
        let (p, _) = p_and_o();
        let u = union(&e2, &p);
        let ty = u.ty().clone();
        let mut g = TreeGen::new(127).with_max_depth(4).with_int_range(-4, 4);
        for _ in 0..150 {
            let t = g.tree(&ty);
            assert_eq!(u.accepts(&t), e2.accepts(&t) || p.accepts(&t));
        }
    }
}
