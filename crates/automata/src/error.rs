//! Errors for the automata algorithms.

use std::fmt;

/// Errors raised by the potentially expensive automata constructions.
///
/// The underlying problems are complete for exponential classes
/// (non-emptiness of alternating STAs is ExpTime-complete, Proposition 2),
/// so the implementations enforce explicit state budgets instead of
/// diverging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A construction exceeded its state budget.
    StateLimit {
        /// Which algorithm hit the limit.
        context: &'static str,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::StateLimit { context, limit } => {
                write!(f, "{context} exceeded its state budget of {limit}")
            }
        }
    }
}

impl std::error::Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AutomataError::StateLimit {
            context: "determinize",
            limit: 42,
        };
        assert_eq!(e.to_string(), "determinize exceeded its state budget of 42");
    }
}
