//! Antichain-based universality and inclusion for STAs.
//!
//! §7 of the paper points at the antichain techniques of Bouajjani et al.
//! (CIAA'08) for nondeterministic tree automata and asks whether they
//! "translate to our setting" — this module answers constructively.
//!
//! The classical bottleneck is the subset construction: complement-based
//! inclusion materializes every reachable subset. The antichain
//! observation is that the bottom-up *post* operator is monotone — for a
//! fixed label, the subset of states reachable from larger child subsets
//! is larger — so a counterexample reachable through any subsets is also
//! reachable through ⊆-minimal ones (for universality) or
//! domination-extremal pairs (for inclusion), and only an antichain of
//! those needs to be explored. Symbolic guards integrate exactly as in
//! determinization: labels are split into satisfiable minterms of the
//! applicable guards, which is where the effective Boolean algebra does
//! its work.
//!
//! Both checks produce a *verified witness tree* on failure, built from
//! minterm models.

use crate::error::AutomataError;
use crate::normalize::{clean, normalize};
use crate::sta::{Sta, StateId};
use fast_smt::{minterms, BoolAlg, Label};
use fast_trees::Tree;
use std::collections::BTreeSet;

/// Budget on antichain elements (counterexample searches degrade to an
/// error rather than running away).
pub const MAX_ANTICHAIN: usize = 1 << 12;

/// An antichain element for universality: a reachable state subset with a
/// witness tree that evaluates to it.
struct UElem {
    set: BTreeSet<StateId>,
    witness: Tree,
}

/// Searches for a tree *outside* the designated language — `None` means
/// the language is universal.
///
/// # Errors
///
/// Propagates normalization budget errors and its own antichain budget.
pub fn universality_counterexample<A: BoolAlg<Elem = Label>>(
    sta: &Sta<A>,
) -> Result<Option<Tree>, AutomataError> {
    let norm = clean(&normalize(sta)?);
    let q0 = norm.initial();
    let alg = norm.alg().clone();
    let ty = norm.ty().clone();

    let mut chain: Vec<UElem> = Vec::new();
    loop {
        let mut grew = false;
        for ctor in ty.ctor_ids() {
            let rank = ty.rank(ctor);
            for tuple in tuples(chain.len(), rank) {
                // Applicable rules: child requirements inside the tuple's
                // subsets.
                let mut states = Vec::new();
                let mut guards: Vec<A::Pred> = Vec::new();
                for q in norm.states() {
                    for r in norm.rules(q) {
                        if r.ctor != ctor {
                            continue;
                        }
                        let ok = r.lookahead.iter().enumerate().all(|(i, s)| {
                            let p = s.iter().next().expect("normalized");
                            chain[tuple[i]].set.contains(p)
                        });
                        if ok {
                            states.push(q);
                            guards.push(r.guard.clone());
                        }
                    }
                }
                let mut uniq: Vec<A::Pred> = Vec::new();
                let mut idx = Vec::with_capacity(guards.len());
                for g in &guards {
                    match uniq.iter().position(|u| u == g) {
                        Some(i) => idx.push(i),
                        None => {
                            uniq.push(g.clone());
                            idx.push(uniq.len() - 1);
                        }
                    }
                }
                for (signs, pred) in minterms(alg.as_ref(), &uniq) {
                    let Some(label) = alg.model(&pred) else {
                        // Can't build a concrete witness: skip this region
                        // (sound — we only miss potential counterexamples,
                        // and Unknown-sat regions have no usable model).
                        continue;
                    };
                    let target: BTreeSet<StateId> = states
                        .iter()
                        .zip(idx.iter())
                        .filter(|(_, &gi)| signs[gi])
                        .map(|(&q, _)| q)
                        .collect();
                    let witness = Tree::new(
                        ctor,
                        label,
                        tuple.iter().map(|&i| chain[i].witness.clone()).collect(),
                    );
                    if !target.contains(&q0) {
                        debug_assert!(!sta.accepts(&witness));
                        return Ok(Some(witness));
                    }
                    // Keep only ⊆-minimal subsets.
                    if chain.iter().any(|e| e.set.is_subset(&target)) {
                        continue;
                    }
                    chain.retain(|e| !target.is_subset(&e.set));
                    chain.push(UElem {
                        set: target,
                        witness,
                    });
                    if chain.len() > MAX_ANTICHAIN {
                        return Err(AutomataError::StateLimit {
                            context: "antichain universality",
                            limit: MAX_ANTICHAIN,
                        });
                    }
                    grew = true;
                }
            }
        }
        if !grew {
            return Ok(None);
        }
    }
}

/// Antichain universality check.
///
/// # Errors
///
/// Propagates budget errors.
pub fn is_universal_antichain<A: BoolAlg<Elem = Label>>(
    sta: &Sta<A>,
) -> Result<bool, AutomataError> {
    Ok(universality_counterexample(sta)?.is_none())
}

/// An antichain element for inclusion: the pair of subsets the two
/// automata assign to a common witness tree. Domination order:
/// `(S, T) ⊒ (S', T')` iff `S ⊇ S'` and `T ⊆ T'` — dominated pairs can
/// never yield a counterexample the dominating pair cannot.
struct IElem {
    a: BTreeSet<StateId>,
    b: BTreeSet<StateId>,
    witness: Tree,
}

/// Searches for a tree in `L(a)` but not in `L(b)` — `None` means
/// `L(a) ⊆ L(b)`.
///
/// # Errors
///
/// Propagates budget errors.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn inclusion_counterexample<A: BoolAlg<Elem = Label>>(
    a: &Sta<A>,
    b: &Sta<A>,
) -> Result<Option<Tree>, AutomataError> {
    assert_eq!(a.ty(), b.ty(), "tree type mismatch");
    let na = clean(&normalize(a)?);
    let nb = clean(&normalize(b)?);
    let (a0, b0) = (na.initial(), nb.initial());
    let alg = na.alg().clone();
    let ty = na.ty().clone();

    let mut chain: Vec<IElem> = Vec::new();
    loop {
        let mut grew = false;
        for ctor in ty.ctor_ids() {
            let rank = ty.rank(ctor);
            for tuple in tuples(chain.len(), rank) {
                // Applicable rules of both automata; minterms over the
                // union of their guards.
                let mut a_states = Vec::new();
                let mut b_states = Vec::new();
                let mut guards: Vec<A::Pred> = Vec::new();
                let mut a_idx = Vec::new();
                let mut b_idx = Vec::new();
                let intern = |g: &A::Pred, guards: &mut Vec<A::Pred>| -> usize {
                    match guards.iter().position(|u| u == g) {
                        Some(i) => i,
                        None => {
                            guards.push(g.clone());
                            guards.len() - 1
                        }
                    }
                };
                for q in na.states() {
                    for r in na.rules(q) {
                        if r.ctor != ctor {
                            continue;
                        }
                        let ok = r.lookahead.iter().enumerate().all(|(i, s)| {
                            let p = s.iter().next().expect("normalized");
                            chain[tuple[i]].a.contains(p)
                        });
                        if ok {
                            a_states.push(q);
                            a_idx.push(intern(&r.guard, &mut guards));
                        }
                    }
                }
                for q in nb.states() {
                    for r in nb.rules(q) {
                        if r.ctor != ctor {
                            continue;
                        }
                        let ok = r.lookahead.iter().enumerate().all(|(i, s)| {
                            let p = s.iter().next().expect("normalized");
                            chain[tuple[i]].b.contains(p)
                        });
                        if ok {
                            b_states.push(q);
                            b_idx.push(intern(&r.guard, &mut guards));
                        }
                    }
                }
                for (signs, pred) in minterms(alg.as_ref(), &guards) {
                    let Some(label) = alg.model(&pred) else {
                        continue;
                    };
                    let ta: BTreeSet<StateId> = a_states
                        .iter()
                        .zip(a_idx.iter())
                        .filter(|(_, &gi)| signs[gi])
                        .map(|(&q, _)| q)
                        .collect();
                    // Pairs with empty A-sets are still kept: subtrees
                    // off a counterexample's accepting spine may have
                    // them.
                    let tb: BTreeSet<StateId> = b_states
                        .iter()
                        .zip(b_idx.iter())
                        .filter(|(_, &gi)| signs[gi])
                        .map(|(&q, _)| q)
                        .collect();
                    let witness = Tree::new(
                        ctor,
                        label,
                        tuple.iter().map(|&i| chain[i].witness.clone()).collect(),
                    );
                    if ta.contains(&a0) && !tb.contains(&b0) {
                        debug_assert!(a.accepts(&witness) && !b.accepts(&witness));
                        return Ok(Some(witness));
                    }
                    // Keep only domination-maximal pairs.
                    if chain
                        .iter()
                        .any(|e| ta.is_subset(&e.a) && e.b.is_subset(&tb))
                    {
                        continue;
                    }
                    chain.retain(|e| !(e.a.is_subset(&ta) && tb.is_subset(&e.b)));
                    chain.push(IElem {
                        a: ta,
                        b: tb,
                        witness,
                    });
                    if chain.len() > MAX_ANTICHAIN {
                        return Err(AutomataError::StateLimit {
                            context: "antichain inclusion",
                            limit: MAX_ANTICHAIN,
                        });
                    }
                    grew = true;
                }
            }
        }
        if !grew {
            return Ok(None);
        }
    }
}

/// Antichain inclusion check: `L(a) ⊆ L(b)`.
///
/// # Errors
///
/// Propagates budget errors.
///
/// # Panics
///
/// Panics if the automata have different tree types.
pub fn includes_antichain<A: BoolAlg<Elem = Label>>(
    a: &Sta<A>,
    b: &Sta<A>,
) -> Result<bool, AutomataError> {
    Ok(inclusion_counterexample(a, b)?.is_none())
}

fn tuples(n: usize, rank: usize) -> Vec<Vec<usize>> {
    if rank == 0 {
        return vec![Vec::new()];
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cur = vec![0usize; rank];
    loop {
        out.push(cur.clone());
        let mut i = rank;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < n {
                break;
            }
            cur[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::{includes, is_universal};
    use crate::ops::{intersect, union};
    use crate::sta::StaBuilder;
    use fast_smt::{CmpOp, Formula, LabelAlg, LabelSig, Term};
    use fast_trees::TreeType;
    use std::sync::Arc;

    fn bt() -> (Arc<TreeType>, Arc<LabelAlg>) {
        let ty = TreeType::new(
            "BT",
            LabelSig::single("i", fast_smt::Sort::Int),
            vec![("L", 0), ("N", 2)],
        );
        let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
        (ty, alg)
    }

    fn leaves(lo: i64) -> Sta {
        let (ty, alg) = bt();
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("q");
        b.leaf_rule(q, l, Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(lo)));
        b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
        b.build(q)
    }

    fn all_trees() -> Sta {
        let (ty, alg) = bt();
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("all");
        b.leaf_rule(q, l, Formula::True);
        b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
        b.build(q)
    }

    #[test]
    fn universality_agrees_with_determinization() {
        assert!(is_universal_antichain(&all_trees()).unwrap());
        assert!(is_universal(&all_trees()).unwrap());
        let partial = leaves(0);
        assert!(!is_universal_antichain(&partial).unwrap());
        assert!(!is_universal(&partial).unwrap());
        // Union of x > 0 and x ≤ 0 leaves is universal.
        let (ty, alg) = bt();
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let q = b.state("le0");
        b.leaf_rule(q, l, Formula::cmp(CmpOp::Le, Term::field(0), Term::int(0)));
        b.simple_rule(q, n, Formula::True, vec![Some(q), Some(q)]);
        let le0 = b.build(q);
        let u = union(&leaves(0), &le0);
        // Not universal: N nodes mixing the two kinds are rejected.
        assert_eq!(
            is_universal_antichain(&u).unwrap(),
            is_universal(&u).unwrap()
        );
    }

    #[test]
    fn universality_counterexample_is_genuine() {
        let partial = leaves(5);
        let cx = universality_counterexample(&partial).unwrap().unwrap();
        assert!(!partial.accepts(&cx));
    }

    #[test]
    fn inclusion_agrees_with_determinization() {
        let big = leaves(0);
        let small = leaves(5);
        assert!(includes_antichain(&small, &big).unwrap());
        assert!(includes(&small, &big).unwrap());
        assert!(!includes_antichain(&big, &small).unwrap());
        assert!(!includes(&big, &small).unwrap());
        // Reflexivity and the lattice corner cases.
        assert!(includes_antichain(&big, &big).unwrap());
        assert!(includes_antichain(&small, &all_trees()).unwrap());
        let meet = intersect(&big, &small);
        assert!(includes_antichain(&meet, &small).unwrap());
    }

    #[test]
    fn inclusion_counterexample_is_genuine() {
        let big = leaves(0);
        let small = leaves(5);
        let cx = inclusion_counterexample(&big, &small).unwrap().unwrap();
        assert!(big.accepts(&cx));
        assert!(!small.accepts(&cx));
    }

    #[test]
    fn randomized_agreement_with_determinization() {
        // Random-ish small automata: guards over residues and thresholds.
        let (ty, alg) = bt();
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let mk = |g1: Formula, g2: Formula| {
            let mut b = StaBuilder::new(ty.clone(), alg.clone());
            let q = b.state("q");
            let r = b.state("r");
            b.leaf_rule(q, l, g1);
            b.simple_rule(q, n, Formula::True, vec![Some(r), Some(q)]);
            b.leaf_rule(r, l, g2);
            b.simple_rule(r, n, Formula::True, vec![Some(q), Some(r)]);
            b.build(q)
        };
        let x = Term::field(0);
        let gs = [
            Formula::cmp(CmpOp::Gt, x.clone(), Term::int(0)),
            Formula::eq(x.clone().modulo(2), Term::int(1)),
            Formula::cmp(CmpOp::Le, x.clone(), Term::int(3)),
            Formula::True,
        ];
        for g1 in &gs {
            for g2 in &gs {
                for h1 in &gs {
                    let a = mk(g1.clone(), g2.clone());
                    let b2 = mk(h1.clone(), g2.clone());
                    assert_eq!(
                        includes_antichain(&a, &b2).unwrap(),
                        includes(&a, &b2).unwrap(),
                        "disagree: {g1} {g2} vs {h1}"
                    );
                }
            }
        }
    }
}
