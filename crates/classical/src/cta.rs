//! Classical nondeterministic (top-down) tree automata over explicit
//! finite ranked alphabets.

use fast_smt::Label;
use fast_trees::{CtorId, Tree};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A ranked symbol of the classical alphabet: a constructor paired with a
/// concrete label drawn from the finite label domain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol {
    /// The constructor.
    pub ctor: CtorId,
    /// Index into the label domain.
    pub label: usize,
    /// Number of children.
    pub rank: usize,
}

/// A classical nondeterministic tree automaton: per-state top-down rules
/// over explicit symbols. The designated state plays the same role as in
/// [`fast_automata::Sta`].
#[derive(Debug, Clone)]
pub struct Cta {
    labels: Vec<Label>,
    rules: Vec<Vec<(Symbol, Vec<usize>)>>,
    initial: usize,
}

/// Builder for [`Cta`].
#[derive(Debug)]
pub struct CtaBuilder {
    labels: Vec<Label>,
    rules: Vec<Vec<(Symbol, Vec<usize>)>>,
}

impl CtaBuilder {
    /// Starts building over a finite label domain.
    pub fn new(labels: Vec<Label>) -> Self {
        CtaBuilder {
            labels,
            rules: Vec::new(),
        }
    }

    /// Declares a state, returning its id.
    pub fn state(&mut self) -> usize {
        self.rules.push(Vec::new());
        self.rules.len() - 1
    }

    /// Adds a rule `(q, symbol) → children`.
    ///
    /// # Panics
    ///
    /// Panics if arities disagree or ids are out of range.
    pub fn rule(&mut self, q: usize, sym: Symbol, children: Vec<usize>) {
        assert_eq!(sym.rank, children.len(), "rank mismatch");
        assert!(sym.label < self.labels.len(), "label out of domain");
        self.rules[q].push((sym, children));
    }

    /// Finishes with the designated state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range.
    pub fn build(self, initial: usize) -> Cta {
        assert!(initial < self.rules.len());
        Cta {
            labels: self.labels,
            rules: self.rules,
            initial,
        }
    }
}

impl Cta {
    /// The label domain.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.rules.len()
    }

    /// Total number of rules — the §6 size measure.
    pub fn rule_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// The designated state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    fn label_index(&self, l: &Label) -> Option<usize> {
        self.labels.iter().position(|x| x == l)
    }

    /// Bottom-up membership: the set of states accepting `t`, or `None`
    /// for the designated state via [`Cta::accepts`].
    fn eval_states(&self, t: &Tree) -> BTreeSet<usize> {
        let kids: Vec<BTreeSet<usize>> = t.children().iter().map(|c| self.eval_states(c)).collect();
        let Some(label) = self.label_index(t.label()) else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        for (q, rules) in self.rules.iter().enumerate() {
            'rules: for (sym, children) in rules {
                if sym.ctor != t.ctor() || sym.label != label {
                    continue;
                }
                for (i, c) in children.iter().enumerate() {
                    if !kids[i].contains(c) {
                        continue 'rules;
                    }
                }
                out.insert(q);
                break;
            }
        }
        out
    }

    /// Language membership at the designated state. Trees whose labels lie
    /// outside the finite domain are rejected.
    pub fn accepts(&self, t: &Tree) -> bool {
        self.eval_states(t).contains(&self.initial)
    }

    /// Emptiness of the designated language (least fixpoint).
    pub fn is_empty(&self) -> bool {
        let n = self.state_count();
        let mut nonempty = vec![false; n];
        loop {
            let mut changed = false;
            for (q, rules) in self.rules.iter().enumerate() {
                if nonempty[q] {
                    continue;
                }
                if rules.iter().any(|(_, cs)| cs.iter().all(|&c| nonempty[c])) {
                    nonempty[q] = true;
                    changed = true;
                }
            }
            if !changed {
                return !nonempty[self.initial];
            }
        }
    }

    /// Union of two languages over the same label domain.
    ///
    /// # Panics
    ///
    /// Panics if the label domains differ.
    pub fn union(&self, other: &Cta) -> Cta {
        assert_eq!(self.labels, other.labels, "label domains differ");
        let offset = self.state_count();
        let mut rules = self.rules.clone();
        for rs in &other.rules {
            rules.push(
                rs.iter()
                    .map(|(s, cs)| (s.clone(), cs.iter().map(|c| c + offset).collect()))
                    .collect(),
            );
        }
        let init = rules.len();
        let mut init_rules: Vec<(Symbol, Vec<usize>)> = self.rules[self.initial].clone();
        init_rules.extend(
            other.rules[other.initial]
                .iter()
                .map(|(s, cs)| (s.clone(), cs.iter().map(|c| c + offset).collect::<Vec<_>>())),
        );
        rules.push(init_rules);
        Cta {
            labels: self.labels.clone(),
            rules,
            initial: init,
        }
    }

    /// Intersection via the product construction (the classical algorithm
    /// whose size is `O(|A|·|B|)` in rules).
    ///
    /// # Panics
    ///
    /// Panics if the label domains differ.
    pub fn intersect(&self, other: &Cta) -> Cta {
        assert_eq!(self.labels, other.labels, "label domains differ");
        let mut ids: HashMap<(usize, usize), usize> = HashMap::new();
        let mut rules: Vec<Vec<(Symbol, Vec<usize>)>> = Vec::new();
        let mut queue = VecDeque::new();
        let root = (self.initial, other.initial);
        ids.insert(root, 0);
        rules.push(Vec::new());
        queue.push_back(root);
        while let Some((p, q)) = queue.pop_front() {
            let me = ids[&(p, q)];
            let mut new_rules = Vec::new();
            for (sa, ca) in &self.rules[p] {
                for (sb, cb) in &other.rules[q] {
                    if sa != sb {
                        continue;
                    }
                    let mut children = Vec::with_capacity(sa.rank);
                    for i in 0..sa.rank {
                        let key = (ca[i], cb[i]);
                        let id = *ids.entry(key).or_insert_with(|| {
                            rules.push(Vec::new());
                            queue.push_back(key);
                            rules.len() - 1
                        });
                        children.push(id);
                    }
                    new_rules.push((sa.clone(), children));
                }
            }
            rules[me] = new_rules;
        }
        Cta {
            labels: self.labels.clone(),
            rules,
            initial: 0,
        }
    }

    /// Complement with respect to the *finite-domain* tree language, via
    /// bottom-up determinization — the construction whose cost §6 calls
    /// "expensive" for large alphabets. Rules are enumerated per symbol
    /// and per reachable child-state tuple.
    pub fn complement(&self) -> Cta {
        // Collect the symbol alphabet actually present plus all symbols
        // over the domain for the constructors we know (needed for
        // completeness of the complement).
        let mut symbols: HashSet<Symbol> = HashSet::new();
        for rs in &self.rules {
            for (s, _) in rs {
                symbols.insert(s.clone());
            }
        }
        // Extend: every (ctor, label) combination seen must be complete
        // over the whole label domain.
        let ctor_ranks: HashSet<(CtorId, usize)> =
            symbols.iter().map(|s| (s.ctor, s.rank)).collect();
        for (ctor, rank) in &ctor_ranks {
            for label in 0..self.labels.len() {
                symbols.insert(Symbol {
                    ctor: *ctor,
                    label,
                    rank: *rank,
                });
            }
        }
        let symbols: Vec<Symbol> = symbols.into_iter().collect();

        // Subset construction, bottom-up, complete over reachable subsets.
        let mut subset_ids: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut det: Vec<(Symbol, Vec<usize>, usize)> = Vec::new();
        let mut intern = |s: BTreeSet<usize>, subsets: &mut Vec<BTreeSet<usize>>| -> usize {
            if let Some(&i) = subset_ids.get(&s) {
                return i;
            }
            subsets.push(s.clone());
            subset_ids.insert(s, subsets.len() - 1);
            subsets.len() - 1
        };
        loop {
            let mut added = false;
            for sym in &symbols {
                let tuples = tuples(subsets.len(), sym.rank);
                for tuple in tuples {
                    if det.iter().any(|(s, t, _)| s == sym && *t == tuple) {
                        continue;
                    }
                    let mut target = BTreeSet::new();
                    for (q, rs) in self.rules.iter().enumerate() {
                        'rules: for (s, cs) in rs {
                            if s != sym {
                                continue;
                            }
                            for (i, c) in cs.iter().enumerate() {
                                if !subsets[tuple[i]].contains(c) {
                                    continue 'rules;
                                }
                            }
                            target.insert(q);
                            break;
                        }
                    }
                    let id = intern(target, &mut subsets);
                    det.push((sym.clone(), tuple, id));
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
        // Top-down automaton: state per subset; initial = union of
        // non-accepting subsets, expressed with a fresh state.
        let n = subsets.len();
        let mut rules: Vec<Vec<(Symbol, Vec<usize>)>> = vec![Vec::new(); n + 1];
        for (sym, tuple, target) in &det {
            rules[*target].push((sym.clone(), tuple.clone()));
            if !subsets[*target].contains(&self.initial) {
                rules[n].push((sym.clone(), tuple.clone()));
            }
        }
        Cta {
            labels: self.labels.clone(),
            rules,
            initial: n,
        }
    }
}

fn tuples(n: usize, rank: usize) -> Vec<Vec<usize>> {
    if rank == 0 {
        return vec![Vec::new()];
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cur = vec![0usize; rank];
    loop {
        out.push(cur.clone());
        let mut i = rank;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < n {
                break;
            }
            cur[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::{LabelSig, Sort, Value};
    use fast_trees::TreeType;
    use std::sync::Arc;

    fn ilist() -> Arc<TreeType> {
        TreeType::new(
            "IList",
            LabelSig::single("i", Sort::Int),
            vec![("nil", 0), ("cons", 1)],
        )
    }

    fn domain(n: i64) -> Vec<Label> {
        (0..n).map(|i| Label::single(Value::Int(i))).collect()
    }

    /// Lists over {0..3} whose elements are all even.
    fn evens() -> (Cta, Arc<TreeType>) {
        let ty = ilist();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = CtaBuilder::new(domain(4));
        let q = b.state();
        b.rule(
            q,
            Symbol {
                ctor: nil,
                label: 0,
                rank: 0,
            },
            vec![],
        );
        for l in [0usize, 2] {
            b.rule(
                q,
                Symbol {
                    ctor: cons,
                    label: l,
                    rank: 1,
                },
                vec![q],
            );
        }
        (b.build(q), ty)
    }

    #[test]
    fn membership() {
        let (a, ty) = evens();
        let t = Tree::parse(&ty, "cons[2](cons[0](nil[0]))").unwrap();
        assert!(a.accepts(&t));
        let t = Tree::parse(&ty, "cons[1](nil[0])").unwrap();
        assert!(!a.accepts(&t));
        // Out-of-domain labels are rejected.
        let t = Tree::parse(&ty, "cons[100](nil[0])").unwrap();
        assert!(!a.accepts(&t));
    }

    #[test]
    fn emptiness() {
        let (a, _) = evens();
        assert!(!a.is_empty());
        let mut b = CtaBuilder::new(domain(2));
        let q = b.state();
        // Only a self-referential rule: empty.
        let cons = fast_trees::CtorId(1);
        b.rule(
            q,
            Symbol {
                ctor: cons,
                label: 0,
                rank: 1,
            },
            vec![q],
        );
        assert!(b.build(q).is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let ty = ilist();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mk = |allowed: &[usize]| {
            let mut b = CtaBuilder::new(domain(4));
            let q = b.state();
            b.rule(
                q,
                Symbol {
                    ctor: nil,
                    label: 0,
                    rank: 0,
                },
                vec![],
            );
            for &l in allowed {
                b.rule(
                    q,
                    Symbol {
                        ctor: cons,
                        label: l,
                        rank: 1,
                    },
                    vec![q],
                );
            }
            b.build(q)
        };
        let evens = mk(&[0, 2]);
        let small = mk(&[0, 1]);
        let u = evens.union(&small);
        let i = evens.intersect(&small);
        let t = |s: &str| Tree::parse(&ty, s).unwrap();
        assert!(u.accepts(&t("cons[1](nil[0])")));
        assert!(u.accepts(&t("cons[2](nil[0])")));
        assert!(!u.accepts(&t("cons[3](nil[0])")));
        assert!(i.accepts(&t("cons[0](nil[0])")));
        assert!(!i.accepts(&t("cons[1](nil[0])")));
        assert!(!i.accepts(&t("cons[2](nil[0])")));
    }

    #[test]
    fn complement() {
        let (a, ty) = evens();
        let c = a.complement();
        let t = |s: &str| Tree::parse(&ty, s).unwrap();
        assert!(!c.accepts(&t("cons[2](nil[0])")));
        assert!(c.accepts(&t("cons[1](nil[0])")));
        assert!(c.accepts(&t("cons[3](cons[2](nil[0]))")));
        // nil[0] is in evens, so not in the complement.
        assert!(!c.accepts(&t("nil[0]")));
        // Complement rule count grows with the domain — the §6 point.
        assert!(c.rule_count() > a.rule_count());
    }

    #[test]
    fn complement_rule_count_scales_with_domain() {
        let ty = ilist();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let counts: Vec<usize> = [4i64, 8, 16]
            .iter()
            .map(|&n| {
                let mut b = CtaBuilder::new(domain(n));
                let q = b.state();
                b.rule(
                    q,
                    Symbol {
                        ctor: nil,
                        label: 0,
                        rank: 0,
                    },
                    vec![],
                );
                b.rule(
                    q,
                    Symbol {
                        ctor: cons,
                        label: 1,
                        rank: 1,
                    },
                    vec![q],
                );
                b.build(q).complement().rule_count()
            })
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }
}
