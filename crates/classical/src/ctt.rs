//! Classical top-down tree transducers over explicit finite alphabets.

use crate::cta::Symbol;
use fast_smt::Label;
use fast_trees::{CtorId, Tree};
use std::collections::BTreeSet;

/// Right-hand-side template of a classical rule: a tree of concrete
/// symbols with `(state, child-index)` leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RhsTemplate {
    /// `q(yᵢ)` — transduce input child `i` from state `q`.
    Call(usize, usize),
    /// A concrete output node.
    Node {
        /// Output constructor.
        ctor: CtorId,
        /// Concrete output label.
        label: Label,
        /// Children templates.
        children: Vec<RhsTemplate>,
    },
}

/// A classical rule `(q, symbol) → rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CttRule {
    /// Source state.
    pub state: usize,
    /// Input symbol matched.
    pub sym: Symbol,
    /// Output template.
    pub rhs: RhsTemplate,
}

/// A classical (finite-alphabet) nondeterministic top-down tree
/// transducer.
#[derive(Debug, Clone)]
pub struct Ctt {
    labels: Vec<Label>,
    state_count: usize,
    rules: Vec<CttRule>,
    initial: usize,
}

impl Ctt {
    /// Creates a transducer from parts.
    ///
    /// # Panics
    ///
    /// Panics if a rule references an out-of-range state.
    pub fn new(labels: Vec<Label>, state_count: usize, rules: Vec<CttRule>, initial: usize) -> Ctt {
        assert!(initial < state_count);
        for r in &rules {
            assert!(r.state < state_count);
        }
        Ctt {
            labels,
            state_count,
            rules,
            initial,
        }
    }

    /// The finite label domain.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of rules — the §6 size measure.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Runs the transduction from the designated state, returning all
    /// outputs (deduplicated).
    pub fn run(&self, t: &Tree) -> Vec<Tree> {
        let set = self.transduce(self.initial, t);
        set.into_iter().collect()
    }

    fn transduce(&self, q: usize, t: &Tree) -> BTreeSet<Tree> {
        let Some(label) = self.labels.iter().position(|l| l == t.label()) else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        for r in &self.rules {
            if r.state != q || r.sym.ctor != t.ctor() || r.sym.label != label {
                continue;
            }
            out.extend(self.eval_rhs(&r.rhs, t));
        }
        out
    }

    fn eval_rhs(&self, rhs: &RhsTemplate, t: &Tree) -> BTreeSet<Tree> {
        match rhs {
            RhsTemplate::Call(q, i) => self.transduce(*q, t.child(*i)),
            RhsTemplate::Node {
                ctor,
                label,
                children,
            } => {
                let mut acc: Vec<Vec<Tree>> = vec![Vec::new()];
                for c in children {
                    let opts = self.eval_rhs(c, t);
                    let mut next = Vec::new();
                    for partial in &acc {
                        for o in &opts {
                            let mut p = partial.clone();
                            p.push(o.clone());
                            next.push(p);
                        }
                    }
                    acc = next;
                }
                acc.into_iter()
                    .map(|kids| Tree::new(*ctor, label.clone(), kids))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::{LabelSig, Sort, Value};
    use fast_trees::TreeType;

    #[test]
    fn classical_increment_mod_4() {
        let ty = TreeType::new(
            "IList",
            LabelSig::single("i", Sort::Int),
            vec![("nil", 0), ("cons", 1)],
        );
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let labels: Vec<Label> = (0..4).map(|i| Label::single(Value::Int(i))).collect();
        // One rule per concrete label — the classical expansion of a
        // single symbolic rule.
        let mut rules = vec![CttRule {
            state: 0,
            sym: Symbol {
                ctor: nil,
                label: 0,
                rank: 0,
            },
            rhs: RhsTemplate::Node {
                ctor: nil,
                label: labels[0].clone(),
                children: vec![],
            },
        }];
        for l in 0..4usize {
            rules.push(CttRule {
                state: 0,
                sym: Symbol {
                    ctor: cons,
                    label: l,
                    rank: 1,
                },
                rhs: RhsTemplate::Node {
                    ctor: cons,
                    label: labels[(l + 1) % 4].clone(),
                    children: vec![RhsTemplate::Call(0, 0)],
                },
            });
        }
        let t = Ctt::new(labels, 1, rules, 0);
        assert_eq!(t.rule_count(), 5);
        let input = Tree::parse(&ty, "cons[3](cons[0](nil[0]))").unwrap();
        let out = t.run(&input);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].display(&ty).to_string(), "cons[0](cons[1](nil[0]))");
        // Out-of-domain input produces nothing.
        let input = Tree::parse(&ty, "cons[9](nil[0])").unwrap();
        assert!(t.run(&input).is_empty());
    }
}
