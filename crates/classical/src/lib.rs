//! # fast-classical — classical finite-alphabet tree automata & transducers
//!
//! The baseline the paper argues against in §6: classical tree automata
//! and top-down tree transducers whose alphabet is an explicit, finite set
//! of ranked symbols. A symbolic automaton/transducer over a finite label
//! domain can be *expanded* into this representation — one classical
//! symbol per (constructor, label) pair — which is exactly the encoding
//! whose size explodes with the alphabet (`tag != "script"` needs
//! `6·(2^16 − 1)` classical rules, §6). The `sec6_classical` benchmark
//! measures that blow-up against the constant-size symbolic form.

#![warn(missing_docs)]

mod cta;
mod ctt;
mod expand;

pub use cta::{Cta, CtaBuilder, Symbol};
pub use ctt::{Ctt, CttRule, RhsTemplate};
pub use expand::{expand_sta, expand_sttr, ExpandError};
