//! Expansion of symbolic automata/transducers over a finite label domain
//! into classical form — the measurement instrument for §6.

use crate::cta::{Cta, CtaBuilder, Symbol};
use crate::ctt::{Ctt, CttRule, RhsTemplate};
use fast_automata::{normalize, Sta};
use fast_core::{Out, Sttr};
use fast_smt::{BoolAlg, Label, LabelAlg, TransAlg};
use std::fmt;

/// Errors during expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// Normalization of the symbolic automaton hit its budget.
    Automata(fast_automata::AutomataError),
    /// The transducer uses regular lookahead, which classical top-down
    /// transducers cannot express (the paper's Example 4 point).
    LookaheadUnsupported,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::Automata(e) => write!(f, "{e}"),
            ExpandError::LookaheadUnsupported => write!(
                f,
                "classical top-down transducers cannot express regular lookahead"
            ),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<fast_automata::AutomataError> for ExpandError {
    fn from(e: fast_automata::AutomataError) -> Self {
        ExpandError::Automata(e)
    }
}

/// Expands a symbolic tree automaton over the finite label `domain`: one
/// classical rule per (symbolic rule, satisfying label). The symbolic
/// automaton is normalized first (classical TAs have no alternation).
///
/// # Errors
///
/// Propagates normalization budget errors.
pub fn expand_sta(sta: &Sta<LabelAlg>, domain: &[Label]) -> Result<Cta, ExpandError> {
    let norm = normalize(sta)?;
    let alg = norm.alg().clone();
    let mut b = CtaBuilder::new(domain.to_vec());
    let states: Vec<usize> = norm.states().map(|_| b.state()).collect();
    for q in norm.states() {
        for r in norm.rules(q) {
            let rank = r.lookahead.len();
            let children: Vec<usize> = r
                .lookahead
                .iter()
                .map(|s| states[s.iter().next().expect("normalized").0])
                .collect();
            for (li, label) in domain.iter().enumerate() {
                if alg.eval(&r.guard, label) {
                    b.rule(
                        states[q.0],
                        Symbol {
                            ctor: r.ctor,
                            label: li,
                            rank,
                        },
                        children.clone(),
                    );
                }
            }
        }
    }
    Ok(b.build(states[norm.initial().0]))
}

/// Expands a lookahead-free symbolic transducer over the finite label
/// `domain`: one classical rule per (symbolic rule, satisfying label),
/// with output label functions evaluated concretely.
///
/// # Errors
///
/// Returns [`ExpandError::LookaheadUnsupported`] if any rule carries a
/// non-empty lookahead set.
pub fn expand_sttr(sttr: &Sttr<LabelAlg>, domain: &[Label]) -> Result<Ctt, ExpandError> {
    let alg = sttr.alg().clone();
    let mut rules = Vec::new();
    for q in sttr.states() {
        for r in sttr.rules(q) {
            if r.lookahead.iter().any(|s| !s.is_empty()) {
                return Err(ExpandError::LookaheadUnsupported);
            }
            let rank = r.lookahead.len();
            for (li, label) in domain.iter().enumerate() {
                if !alg.eval(&r.guard, label) {
                    continue;
                }
                let Some(rhs) = expand_out(&alg, &r.output, label) else {
                    continue;
                };
                rules.push(CttRule {
                    state: q.0,
                    sym: Symbol {
                        ctor: r.ctor,
                        label: li,
                        rank,
                    },
                    rhs,
                });
            }
        }
    }
    Ok(Ctt::new(
        domain.to_vec(),
        sttr.state_count(),
        rules,
        sttr.initial().0,
    ))
}

fn expand_out(alg: &LabelAlg, out: &Out<LabelAlg>, input: &Label) -> Option<RhsTemplate> {
    match out {
        Out::Call(q, i) => Some(RhsTemplate::Call(q.0, *i)),
        Out::Node {
            ctor,
            fun,
            children,
        } => {
            let label = alg.apply_fun(fun, input)?;
            let kids = children
                .iter()
                .map(|c| expand_out(alg, c, input))
                .collect::<Option<Vec<_>>>()?;
            Some(RhsTemplate::Node {
                ctor: *ctor,
                label,
                children: kids,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_automata::StaBuilder;
    use fast_core::SttrBuilder;
    use fast_smt::{CmpOp, Formula, LabelFn, LabelSig, Sort, Term, Value};
    use fast_trees::{Tree, TreeType};
    use std::sync::Arc;

    fn setup() -> (Arc<TreeType>, Arc<LabelAlg>, Vec<Label>) {
        let ty = TreeType::new(
            "IList",
            LabelSig::single("i", Sort::Int),
            vec![("nil", 0), ("cons", 1)],
        );
        let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
        let domain: Vec<Label> = (0..16).map(|i| Label::single(Value::Int(i))).collect();
        (ty, alg, domain)
    }

    #[test]
    fn expanded_sta_agrees_with_symbolic() {
        let (ty, alg, domain) = setup();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg);
        let q = b.state("evens");
        b.leaf_rule(q, nil, Formula::True);
        b.simple_rule(
            q,
            cons,
            Formula::eq(Term::field(0).modulo(2), Term::int(0)),
            vec![Some(q)],
        );
        let sta = b.build(q);
        let cta = expand_sta(&sta, &domain).unwrap();
        // One classical rule per even label plus the nil rules.
        assert!(cta.rule_count() > sta.rule_count());
        for text in [
            "nil[0]",
            "cons[2](nil[0])",
            "cons[3](nil[0])",
            "cons[4](cons[6](nil[0]))",
        ] {
            let t = Tree::parse(&ty, text).unwrap();
            assert_eq!(cta.accepts(&t), sta.accepts(&t), "on {text}");
        }
    }

    #[test]
    fn expanded_rule_count_grows_linearly() {
        let (ty, alg, _) = setup();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg);
        let q = b.state("nonzero");
        b.leaf_rule(q, nil, Formula::True);
        b.simple_rule(
            q,
            cons,
            Formula::cmp(CmpOp::Ne, Term::field(0), Term::int(0)),
            vec![Some(q)],
        );
        let sta = b.build(q);
        let counts: Vec<usize> = [8i64, 16, 32]
            .iter()
            .map(|&n| {
                let domain: Vec<Label> = (0..n).map(|i| Label::single(Value::Int(i))).collect();
                expand_sta(&sta, &domain).unwrap().rule_count()
            })
            .collect();
        // Symbolic stays at 2 rules; classical grows linearly: the
        // true-guarded nil rule expands to n copies and the x≠0 cons rule
        // to n−1, so 2n−1 in total.
        assert_eq!(sta.rule_count(), 2);
        assert_eq!(counts, vec![15, 31, 63]);
    }

    #[test]
    fn expanded_sttr_agrees_with_symbolic() {
        let (ty, alg, domain) = setup();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty.clone(), alg);
        let q = b.state("inc_mod_16");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::field(0).add(Term::int(1)).modulo(16)]),
                vec![Out::Call(q, 0)],
            ),
        );
        let sttr = b.build(q);
        let ctt = expand_sttr(&sttr, &domain).unwrap();
        // Both true-guarded rules expand once per domain label.
        assert_eq!(ctt.rule_count(), 16 + 16);
        let input = Tree::parse(&ty, "cons[15](cons[3](nil[0]))").unwrap();
        assert_eq!(ctt.run(&input), sttr.run(&input).unwrap());
    }

    #[test]
    fn lookahead_is_rejected() {
        let (ty, alg, domain) = setup();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        // Lookahead automaton: anything.
        let mut lb = StaBuilder::new(ty.clone(), alg.clone());
        let all = lb.state("all");
        lb.leaf_rule(all, nil, Formula::True);
        lb.simple_rule(all, cons, Formula::True, vec![Some(all)]);
        let la = lb.build(all);

        let mut b = SttrBuilder::new(ty.clone(), alg).with_lookahead(la);
        let q = b.state("q");
        b.rule(
            q,
            cons,
            Formula::True,
            vec![[fast_automata::StateId(0)].into_iter().collect()],
            Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
        );
        let sttr = b.build(q);
        assert!(matches!(
            expand_sttr(&sttr, &domain),
            Err(ExpandError::LookaheadUnsupported)
        ));
    }
}
