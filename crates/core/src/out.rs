//! Output terms of transducer rules — the `k`-rank tree transformers
//! `Λ(T_σ^Σ, Q, k)` of Definition 4.

use fast_automata::StateId;
use fast_smt::TransAlg;
use fast_trees::CtorId;
use std::collections::BTreeSet;

/// An output term: either a recursive call `q̃(yᵢ)` on an input child, or
/// an output node whose label is a symbolic function of the input label.
///
/// Note the deliberate absence of a bare `yᵢ` case: per Definition 4,
/// subtrees are only accessed through a state. Verbatim copying is
/// expressed by calling an identity state (see [`crate::identity`]); the
/// Fast front-end desugars bare `y` accordingly.
#[derive(Debug)]
pub enum Out<A: TransAlg> {
    /// `q̃(yᵢ)`: transduce input child `i` from state `q`.
    Call(StateId, usize),
    /// `f[e(x)](t₁, …, tₖ)`: an output node.
    Node {
        /// Output constructor.
        ctor: CtorId,
        /// Symbolic label function applied to the input label.
        fun: A::Fun,
        /// Child output terms.
        children: Vec<Out<A>>,
    },
}

impl<A: TransAlg> Clone for Out<A> {
    fn clone(&self) -> Self {
        match self {
            Out::Call(q, i) => Out::Call(*q, *i),
            Out::Node {
                ctor,
                fun,
                children,
            } => Out::Node {
                ctor: *ctor,
                fun: fun.clone(),
                children: children.clone(),
            },
        }
    }
}

impl<A: TransAlg> PartialEq for Out<A> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Out::Call(q, i), Out::Call(r, j)) => q == r && i == j,
            (
                Out::Node {
                    ctor: c1,
                    fun: f1,
                    children: k1,
                },
                Out::Node {
                    ctor: c2,
                    fun: f2,
                    children: k2,
                },
            ) => c1 == c2 && f1 == f2 && k1 == k2,
            _ => false,
        }
    }
}

impl<A: TransAlg> Eq for Out<A> {}

impl<A: TransAlg> Out<A> {
    /// Convenience constructor for an output node.
    pub fn node(ctor: CtorId, fun: A::Fun, children: Vec<Out<A>>) -> Self {
        Out::Node {
            ctor,
            fun,
            children,
        }
    }

    /// Counts occurrences of each input-child index (used for the
    /// linearity check of Definition 5).
    pub fn child_use_counts(&self, counts: &mut Vec<usize>) {
        match self {
            Out::Call(_, i) => {
                if counts.len() <= *i {
                    counts.resize(i + 1, 0);
                }
                counts[*i] += 1;
            }
            Out::Node { children, .. } => {
                for c in children {
                    c.child_use_counts(counts);
                }
            }
        }
    }

    /// The set `St(i, t)` of states applied to input child `i`
    /// (Definition 6: these join the lookahead in the domain automaton).
    pub fn states_on_child(&self, i: usize, out: &mut BTreeSet<StateId>) {
        match self {
            Out::Call(q, j) => {
                if *j == i {
                    out.insert(*q);
                }
            }
            Out::Node { children, .. } => {
                for c in children {
                    c.states_on_child(i, out);
                }
            }
        }
    }

    /// All states called anywhere in the output.
    pub fn states_used(&self, out: &mut BTreeSet<StateId>) {
        match self {
            Out::Call(q, _) => {
                out.insert(*q);
            }
            Out::Node { children, .. } => {
                for c in children {
                    c.states_used(out);
                }
            }
        }
    }

    /// Remaps the states mentioned in calls (used when absorbing a
    /// transducer into another state space).
    pub fn map_states(&self, f: &dyn Fn(StateId) -> StateId) -> Out<A> {
        match self {
            Out::Call(q, i) => Out::Call(f(*q), *i),
            Out::Node {
                ctor,
                fun,
                children,
            } => Out::Node {
                ctor: *ctor,
                fun: fun.clone(),
                children: children.iter().map(|c| c.map_states(f)).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_smt::{LabelAlg, LabelFn, Term};

    type O = Out<LabelAlg>;

    fn call(q: usize, i: usize) -> O {
        Out::Call(StateId(q), i)
    }

    #[test]
    fn child_counts_and_linearity_data() {
        // f[x](q(y0), g[x](q(y0), r(y2)))
        let t: O = Out::node(
            fast_trees::CtorId(0),
            LabelFn::identity(1),
            vec![
                call(0, 0),
                Out::node(
                    fast_trees::CtorId(1),
                    LabelFn::identity(1),
                    vec![call(0, 0), call(1, 2)],
                ),
            ],
        );
        let mut counts = Vec::new();
        t.child_use_counts(&mut counts);
        assert_eq!(counts, vec![2, 0, 1]);

        let mut st0 = BTreeSet::new();
        t.states_on_child(0, &mut st0);
        assert_eq!(st0.into_iter().collect::<Vec<_>>(), vec![StateId(0)]);

        let mut all = BTreeSet::new();
        t.states_used(&mut all);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn map_states() {
        let t: O = Out::node(
            fast_trees::CtorId(0),
            LabelFn::new(vec![Term::field(0)]),
            vec![call(3, 1)],
        );
        let mapped = t.map_states(&|q| StateId(q.0 + 10));
        let mut all = BTreeSet::new();
        mapped.states_used(&mut all);
        assert!(all.contains(&StateId(13)));
        assert_eq!(mapped, mapped.clone());
    }
}
