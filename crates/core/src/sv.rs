//! Single-valuedness of STTRs — a *semantic* decision with explicit
//! budgets (the FA007 analysis).
//!
//! Single-valuedness (`|T_q0(t)| ≤ 1` for every input `t`) is the
//! left-composability precondition of Theorem 4 and is an **open
//! problem** for STTRs in general (§7 of the paper). This module
//! therefore implements a sound three-way decision rather than a
//! complete one:
//!
//! * [`SvVerdict::Single`] — a proof. Either the transducer is
//!   deterministic (Definition 9), or a bounded product construction
//!   discharged every *output-equivalence obligation*: for each pair of
//!   simultaneously-enabled rules, the outputs are structurally equal
//!   node-for-node, the label functions provably agree on every label
//!   satisfying the joint guard (via [`TransAlg::funs_differ`] and the
//!   solver), and aligned recursive calls generate further state-pair
//!   obligations, discharged coinductively.
//! * [`SvVerdict::Ambiguous`] — a refutation: a concrete input tree on
//!   which [`Sttr::run`] was *observed* to return ≥ 2 outputs. The
//!   witness is always run-verified, never inferred.
//! * [`SvVerdict::Unknown`] — the construction hit a budget or an
//!   obligation it cannot compare (e.g. calls on different children),
//!   and the bounded witness search found no counterexample.
//!
//! The payoff is composition exactness ([`crate::compose_exactness`])
//! and pipeline fusion: a single-valued-but-nondeterministic left
//! factor — two overlapping rules whose outputs are semantically equal
//! on the overlap — now fuses exactly where the determinism-only check
//! had to cascade.

use crate::equiv::{enumerate, extend_guard_labels};
use crate::error::TransducerError;
use crate::out::Out;
use crate::sttr::Sttr;
use fast_automata::{nonempty_states, normalize_rooted, StateId};
use fast_smt::{Label, TransAlg};
use fast_trees::Tree;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// Budgets for [`Sttr::single_valuedness`]. Exhausting any of them turns
/// the answer into [`SvVerdict::Unknown`], never into a wrong verdict.
#[derive(Debug, Clone, Copy)]
pub struct SvBudget {
    /// Maximum distinct state pairs in the product construction.
    pub max_state_pairs: usize,
    /// Maximum solver satisfiability checks.
    pub max_solver_checks: usize,
    /// Maximum depth of candidate trees in the witness search.
    pub search_depth: usize,
    /// Maximum candidate trees run in the witness search.
    pub search_cases: usize,
}

impl Default for SvBudget {
    fn default() -> Self {
        SvBudget {
            max_state_pairs: 512,
            max_solver_checks: 2_048,
            search_depth: 3,
            search_cases: 600,
        }
    }
}

/// How a [`SvVerdict::Single`] verdict was established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvProof {
    /// Deterministic per Definition 9 — no two distinct rules are ever
    /// simultaneously enabled with different outputs.
    Deterministic,
    /// Nondeterministic, but every pair of simultaneously-enabled rules
    /// produces provably equal outputs (solver-checked label functions,
    /// coinductively discharged state-pair obligations).
    OutputEquivalent {
        /// State pairs discharged by the product construction.
        pairs_checked: usize,
        /// Solver satisfiability checks spent.
        solver_checks: usize,
    },
}

/// The three-way single-valuedness verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvVerdict {
    /// Provably single-valued: `|T(t)| ≤ 1` for every input.
    Single(SvProof),
    /// Provably *not* single-valued: `run(witness)` returned `outputs`
    /// (≥ 2) distinct trees.
    Ambiguous {
        /// A concrete input with more than one output (run-verified).
        witness: Tree,
        /// The observed output count on `witness` (a lower bound when
        /// the verifying run hit its output cap).
        outputs: usize,
    },
    /// Undecided within budget.
    Unknown {
        /// What stopped the decision (budget hit or incomparable shapes).
        reason: String,
    },
}

impl SvVerdict {
    /// `true` iff the transducer is proven single-valued.
    pub fn is_single(&self) -> bool {
        matches!(self, SvVerdict::Single(_))
    }

    /// Renders the verdict against a tree type (witness trees print
    /// readably).
    pub fn display<'a>(&'a self, ty: &'a fast_trees::TreeType) -> SvVerdictDisplay<'a> {
        SvVerdictDisplay { v: self, ty }
    }
}

/// [`fmt::Display`] adapter for [`SvVerdict`] with access to the tree type.
pub struct SvVerdictDisplay<'a> {
    v: &'a SvVerdict,
    ty: &'a fast_trees::TreeType,
}

impl fmt::Display for SvVerdictDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.v {
            SvVerdict::Single(SvProof::Deterministic) => {
                write!(f, "single-valued (deterministic)")
            }
            SvVerdict::Single(SvProof::OutputEquivalent {
                pairs_checked,
                solver_checks,
            }) => write!(
                f,
                "single-valued (nondeterministic; output-equivalence proof, \
                 {pairs_checked} state pairs, {solver_checks} solver checks)"
            ),
            SvVerdict::Ambiguous { witness, outputs } => write!(
                f,
                "ambiguous: {} outputs on {}",
                outputs,
                witness.display(self.ty)
            ),
            SvVerdict::Unknown { reason } => {
                write!(f, "single-valuedness undecided: {reason}")
            }
        }
    }
}

/// Outcome of one output-equivalence obligation.
enum EqOutcome {
    /// Outputs forced equal (modulo discharged state-pair obligations).
    Equal,
    /// Outputs provably differ; carries a label model exercising the
    /// disagreement, if the solver produced one (fed to the witness
    /// search's label pool).
    Distinct(Option<Label>),
    /// Shapes not comparable by this construction.
    Undecided(String),
}

struct SvCtx<'a, A: TransAlg<Elem = Label>> {
    s: &'a Sttr<A>,
    budget: SvBudget,
    solver_checks: usize,
    pairs_checked: usize,
    /// Labels from solver models of observed disagreements, seeding the
    /// witness search.
    hint_labels: Vec<Label>,
}

impl<A: TransAlg<Elem = Label>> SvCtx<'_, A> {
    fn sat(&mut self, p: &A::Pred) -> Result<bool, String> {
        if self.solver_checks >= self.budget.max_solver_checks {
            return Err(format!(
                "solver-check budget exceeded ({})",
                self.budget.max_solver_checks
            ));
        }
        self.solver_checks += 1;
        Ok(self.s.alg().is_sat(p))
    }

    /// Are rules `ra` and `rb` ever enabled on the same node? Checks the
    /// guards' joint satisfiability and each child's joint lookahead
    /// non-emptiness. Over-approximates on lookahead budget errors
    /// (assuming enabled is the sound direction — it only adds
    /// obligations).
    fn jointly_enabled(
        &mut self,
        ra: &crate::sttr::TRule<A>,
        rb: &crate::sttr::TRule<A>,
    ) -> Result<Option<A::Pred>, String> {
        if ra.ctor != rb.ctor {
            return Ok(None);
        }
        let gamma = self.s.alg().and(&ra.guard, &rb.guard);
        if !self.sat(&gamma)? {
            return Ok(None);
        }
        for i in 0..ra.lookahead.len() {
            let joint: BTreeSet<StateId> =
                ra.lookahead[i].union(&rb.lookahead[i]).copied().collect();
            if joint.is_empty() {
                continue;
            }
            match normalize_rooted(self.s.lookahead_sta(), vec![joint]) {
                Ok((norm, roots)) => {
                    if !nonempty_states(&norm)[roots[0].0] {
                        return Ok(None);
                    }
                }
                // Budget overflow: conservatively treat as enabled.
                Err(_) => continue,
            }
        }
        Ok(Some(gamma))
    }

    /// Checks that outputs `a` and `b` are forced equal under guard
    /// `gamma`, pushing aligned `Call`/`Call` pairs onto `obligations`.
    fn out_eq(
        &mut self,
        gamma: &A::Pred,
        a: &Out<A>,
        b: &Out<A>,
        obligations: &mut Vec<(StateId, StateId)>,
    ) -> Result<EqOutcome, String> {
        match (a, b) {
            (Out::Call(p1, i), Out::Call(p2, j)) => {
                if i != j {
                    return Ok(EqOutcome::Undecided(format!(
                        "calls on different input children y{i} / y{j}"
                    )));
                }
                let (lo, hi) = if p1.0 <= p2.0 { (*p1, *p2) } else { (*p2, *p1) };
                obligations.push((lo, hi));
                Ok(EqOutcome::Equal)
            }
            (
                Out::Node {
                    ctor: c1,
                    fun: f1,
                    children: k1,
                },
                Out::Node {
                    ctor: c2,
                    fun: f2,
                    children: k2,
                },
            ) => {
                if c1 != c2 {
                    // Different output constructors under a satisfiable
                    // joint guard: genuinely distinct outputs.
                    return Ok(EqOutcome::Distinct(self.s.alg().model(gamma)));
                }
                if f1 != f2 {
                    match self.s.alg().funs_differ(f1, f2) {
                        Some(diff) => {
                            let d = self.s.alg().and(gamma, &diff);
                            if self.sat(&d)? {
                                return Ok(EqOutcome::Distinct(self.s.alg().model(&d)));
                            }
                        }
                        None => {
                            return Ok(EqOutcome::Undecided(
                                "label-function equivalence not expressible in this algebra"
                                    .to_string(),
                            ));
                        }
                    }
                }
                for (ca, cb) in k1.iter().zip(k2) {
                    match self.out_eq(gamma, ca, cb, obligations)? {
                        EqOutcome::Equal => {}
                        other => return Ok(other),
                    }
                }
                Ok(EqOutcome::Equal)
            }
            _ => Ok(EqOutcome::Undecided(
                "output shapes differ (node vs. recursive call)".to_string(),
            )),
        }
    }
}

impl<A: TransAlg<Elem = Label>> Sttr<A> {
    /// Decides single-valuedness within `budget` — see the [module
    /// docs](crate::sv) for the construction and its guarantees.
    ///
    /// Soundness: `Single` verdicts are proofs, `Ambiguous` witnesses are
    /// run-verified, and every failure mode (solver budget, state-pair
    /// budget, incomparable output shapes, run errors during the witness
    /// search) degrades to `Unknown`.
    pub fn single_valuedness(&self, budget: SvBudget) -> SvVerdict {
        let _span = fast_obs::span!("sv.decide");
        // Fast path: determinism (Definition 9) implies single-valuedness.
        let nd = match self.nondeterministic_rules() {
            Ok(None) => return SvVerdict::Single(SvProof::Deterministic),
            Ok(Some(w)) => Some(w),
            Err(_) => None,
        };
        let mut ctx = SvCtx {
            s: self,
            budget,
            solver_checks: 0,
            pairs_checked: 0,
            hint_labels: Vec::new(),
        };
        let blocker = if nd.is_some() {
            match self.sv_product(&mut ctx) {
                Ok(None) => {
                    fast_obs::count!("sv.proved_output_equivalent");
                    return SvVerdict::Single(SvProof::OutputEquivalent {
                        pairs_checked: ctx.pairs_checked,
                        solver_checks: ctx.solver_checks,
                    });
                }
                Ok(Some(reason)) => reason,
                Err(reason) => reason,
            }
        } else {
            "determinism check hit the lookahead state budget".to_string()
        };
        // Refutation phase: bounded search for a run-verified witness.
        match self.sv_witness_search(&ctx.hint_labels, ctx.budget) {
            Some((witness, outputs)) => {
                fast_obs::count!("sv.refuted");
                SvVerdict::Ambiguous { witness, outputs }
            }
            None => {
                fast_obs::count!("sv.unknown");
                SvVerdict::Unknown {
                    reason: format!(
                        "{blocker}; no counterexample within search budget \
                         (depth {}, {} cases)",
                        ctx.budget.search_depth, ctx.budget.search_cases
                    ),
                }
            }
        }
    }

    /// The bounded product construction. `Ok(None)` = all obligations
    /// discharged (proof), `Ok(Some(reason))` = a `Distinct`/`Undecided`
    /// obligation (fall through to witness search), `Err(reason)` =
    /// budget exhausted.
    fn sv_product(&self, ctx: &mut SvCtx<'_, A>) -> Result<Option<String>, String> {
        // Obligation E(q1,q2): on every input tree, the *union* of the two
        // states' output sets has at most one element. E(q0,q0) is
        // single-valuedness; obligations propagate through aligned
        // recursive calls in rule outputs.
        let mut seen: HashSet<(StateId, StateId)> = HashSet::new();
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
        let root = (self.initial(), self.initial());
        seen.insert(root);
        queue.push_back(root);
        while let Some((q1, q2)) = queue.pop_front() {
            ctx.pairs_checked += 1;
            if ctx.pairs_checked > ctx.budget.max_state_pairs {
                return Err(format!(
                    "state-pair budget exceeded ({})",
                    ctx.budget.max_state_pairs
                ));
            }
            let (ra_all, rb_all) = (self.rules(q1), self.rules(q2));
            for (ai, ra) in ra_all.iter().enumerate() {
                // Within one state, unordered pairs suffice — including
                // the diagonal: a rule must agree with *itself* so that
                // nondeterminism in its callees is caught.
                let bs = if q1 == q2 { ai.. } else { 0.. };
                for bi in (bs).take_while(|&bi| bi < rb_all.len()) {
                    let rb = &rb_all[bi];
                    let Some(gamma) = ctx.jointly_enabled(ra, rb)? else {
                        continue;
                    };
                    let mut obligations = Vec::new();
                    match ctx.out_eq(&gamma, &ra.output, &rb.output, &mut obligations)? {
                        EqOutcome::Equal => {}
                        EqOutcome::Distinct(model) => {
                            if let Some(l) = model {
                                ctx.hint_labels.push(l);
                            }
                            return Ok(Some(format!(
                                "rules {} / {} produce distinct outputs when jointly enabled",
                                self.describe_rule(q1, ai),
                                self.describe_rule(q2, bi)
                            )));
                        }
                        EqOutcome::Undecided(why) => {
                            return Ok(Some(format!(
                                "rules {} / {}: {}",
                                self.describe_rule(q1, ai),
                                self.describe_rule(q2, bi),
                                why
                            )));
                        }
                    }
                    for ob in obligations {
                        if seen.insert(ob) {
                            queue.push_back(ob);
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Bounded-exhaustive search for an input with ≥ 2 outputs. Labels
    /// are mined from the transducer's own guards plus any solver models
    /// of observed label-function disagreements.
    fn sv_witness_search(&self, hints: &[Label], budget: SvBudget) -> Option<(Tree, usize)> {
        let mut labels: Vec<Label> = vec![Label::default_of(self.ty().sig())];
        for h in hints {
            if !labels.contains(h) {
                labels.push(h.clone());
            }
        }
        extend_guard_labels(self, &mut labels);
        let mut cases = 0usize;
        let mut found: Option<(Tree, usize)> = None;
        enumerate(self.ty(), &labels, budget.search_depth, &mut |t| {
            if cases >= budget.search_cases {
                return false;
            }
            cases += 1;
            const CAP: usize = 4_096;
            match self.run_bounded(t, CAP) {
                Ok(outs) if outs.len() >= 2 => {
                    found = Some((t.clone(), outs.len()));
                    false
                }
                // Hitting the cap proves > CAP outputs exist — certainly
                // ambiguous; report the cap as a lower bound.
                Err(TransducerError::Budget { .. }) => {
                    found = Some((t.clone(), CAP));
                    false
                }
                _ => true,
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sttr::fixtures::{ilist, ilist_alg, map_caesar};
    use crate::sttr::SttrBuilder;
    use fast_smt::{CmpOp, Formula, LabelFn, Term};

    #[test]
    fn deterministic_is_single() {
        let m = map_caesar();
        assert_eq!(
            m.single_valuedness(SvBudget::default()),
            SvVerdict::Single(SvProof::Deterministic)
        );
        assert!(m.is_single_valued());
    }

    /// Two overlapping cons rules whose outputs are semantically equal on
    /// the overlap: guard `i ≥ 0` outputs `i`, guard `i ≤ 0` outputs
    /// `i * 1`. At the overlap (`i = 0`) both output 0.
    fn nondet_but_single() -> Sttr {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("norm");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::cmp(CmpOp::Ge, Term::field(0), Term::int(0)),
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::cmp(CmpOp::Le, Term::field(0), Term::int(0)),
            Out::node(
                cons,
                LabelFn::new(vec![Term::field(0).mul(Term::int(1))]),
                vec![Out::Call(q, 0)],
            ),
        );
        b.build(q)
    }

    #[test]
    fn nondet_but_output_equivalent_is_single() {
        let s = nondet_but_single();
        assert!(!s.is_deterministic().unwrap(), "rules overlap at i = 0");
        let v = s.single_valuedness(SvBudget::default());
        assert!(
            matches!(v, SvVerdict::Single(SvProof::OutputEquivalent { .. })),
            "expected output-equivalence proof, got {v:?}"
        );
        assert!(s.is_single_valued());
    }

    #[test]
    fn genuinely_ambiguous_has_verified_witness() {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("amb");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::int(42)]),
                vec![Out::Call(q, 0)],
            ),
        );
        let s = b.build(q);
        match s.single_valuedness(SvBudget::default()) {
            SvVerdict::Ambiguous { witness, outputs } => {
                assert!(outputs >= 2);
                assert!(s.run(&witness).unwrap().len() >= 2, "witness must verify");
            }
            other => panic!("expected Ambiguous, got {other:?}"),
        }
        assert!(!s.is_single_valued());
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_wrong() {
        let s = nondet_but_single();
        let tiny = SvBudget {
            max_state_pairs: 0,
            max_solver_checks: 0,
            search_depth: 1,
            search_cases: 4,
        };
        match s.single_valuedness(tiny) {
            SvVerdict::Unknown { reason } => {
                assert!(reason.contains("budget"), "{reason}");
            }
            other => panic!("expected Unknown under zero budget, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_catches_nondeterministic_callee() {
        // One deterministic top rule calling a nondeterministic helper:
        // the diagonal obligation E(p,p) must catch it.
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let top = b.state("top");
        let p = b.state("p");
        b.plain_rule(
            top,
            cons,
            Formula::True,
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(p, 0)]),
        );
        b.plain_rule(
            top,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            p,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            p,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::new(vec![Term::int(9)]), vec![]),
        );
        let s = b.build(top);
        match s.single_valuedness(SvBudget::default()) {
            SvVerdict::Ambiguous { witness, .. } => {
                assert!(s.run(&witness).unwrap().len() >= 2);
            }
            other => panic!("expected Ambiguous via callee, got {other:?}"),
        }
    }
}
