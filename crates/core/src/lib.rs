//! # fast-core — symbolic tree transducers with regular lookahead
//!
//! The primary contribution of “Fast: a Transducer-Based Language for Tree
//! Manipulation” (PLDI 2014), §3–§4:
//!
//! * [`Sttr`] / [`SttrBuilder`] / [`Out`] — STTRs (Definition 5) whose
//!   rules carry symbolic guards, per-child regular lookahead (an embedded
//!   [`fast_automata::Sta`]), and output terms with label *functions*;
//! * [`Sttr::run`] — the transduction semantics (Definition 7), with
//!   memoized lookahead evaluation and explicit output budgets;
//! * [`Sttr::domain`] — the domain automaton (Definition 6);
//! * [`compose`] — the paper's composition algorithm
//!   (`Compose`/`Reduce`/`Look`, §4.1): always an over-approximation of
//!   `T_T ∘ T_S`, exact when `S` is single-valued or `T` is linear
//!   (Theorem 4) — see [`Sttr::is_deterministic`] and [`Sttr::is_linear`];
//! * [`preimage`], [`restrict`], [`restrict_out`], [`type_check`] — the
//!   derived analyses of §3.5;
//! * [`identity`], [`identity_restricted`] — the identity STTR and
//!   `restrict I l`, the single-valued *and* linear workhorse that makes
//!   the derived operations exact.
//!
//! # Examples
//!
//! Deforestation in one line — compose `map` with `map` and run the
//! fused transducer once over the input (§5.3):
//!
//! ```
//! use fast_core::{compose, Out, SttrBuilder};
//! use fast_smt::{Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
//! use fast_trees::{Tree, TreeType};
//! use std::sync::Arc;
//!
//! let ilist = TreeType::new("IList", LabelSig::single("i", Sort::Int),
//!                           vec![("nil", 0), ("cons", 1)]);
//! let alg = Arc::new(LabelAlg::new(ilist.sig().clone()));
//! let (nil, cons) = (ilist.ctor_id("nil").unwrap(), ilist.ctor_id("cons").unwrap());
//!
//! // map_caesar: x ↦ (x + 5) % 26
//! let mut b = SttrBuilder::new(ilist.clone(), alg.clone());
//! let q = b.state("map");
//! b.plain_rule(q, nil, Formula::True,
//!              Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]));
//! b.plain_rule(q, cons, Formula::True,
//!              Out::node(cons,
//!                        LabelFn::new(vec![Term::field(0).add(Term::int(5)).modulo(26)]),
//!                        vec![Out::Call(q, 0)]));
//! let map = b.build(q);
//!
//! let fused = compose(&map, &map)?.sttr; // map twice in a single pass
//! let input = Tree::parse(&ilist, "cons[0](nil[0])").unwrap();
//! assert_eq!(fused.run(&input)?[0].display(&ilist).to_string(),
//!            "cons[10](nil[0])");
//! # Ok::<(), fast_core::TransducerError>(())
//! ```

#![warn(missing_docs)]

mod compose;
mod equiv;
mod error;
mod ops;
mod out;
mod sttr;
pub mod sv;

pub use compose::{
    compose, compose_exactness, compose_with, preimage, try_compose_exact, ComposeOptions,
    Composed, Exactness, MAX_COMPOSED_RULES, MAX_PAIR_STATES,
};
pub use equiv::{find_inequivalence, EquivConfig};
pub use error::TransducerError;
pub use ops::{is_empty_transducer, restrict, restrict_out, type_check};
pub use out::Out;
pub use sttr::{identity, identity_restricted, Sttr, SttrBuilder, TRule, DEFAULT_RUN_CAP};
pub use sv::{SvBudget, SvProof, SvVerdict};
