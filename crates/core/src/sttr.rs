//! Symbolic tree transducers with regular lookahead (Definition 5).

use crate::error::TransducerError;
use crate::out::Out;
use fast_automata::{nonempty_states, normalize_rooted, Rule as StaRule, Sta, StateId};
use fast_smt::{Label, LabelAlg, TransAlg};
use fast_trees::{CtorId, Tree, TreeId, TreeType};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Default bound on the number of output trees a run may produce
/// (nondeterministic transducers can be exponential).
pub const DEFAULT_RUN_CAP: usize = 1 << 16;

/// A transformation rule `(q, f, φ, ℓ̄, t)`: from state `q`, on a node
/// `f[x](ȳ)` whose label satisfies `φ` and whose child `i` lies in the
/// language of every lookahead state in `ℓ̄ᵢ`, produce the output term `t`.
#[derive(Debug)]
pub struct TRule<A: TransAlg> {
    /// Input constructor.
    pub ctor: CtorId,
    /// Guard over the input label.
    pub guard: A::Pred,
    /// Per-child conjunctive sets of *lookahead automaton* states.
    pub lookahead: Vec<BTreeSet<StateId>>,
    /// Output tree transformer.
    pub output: Out<A>,
}

impl<A: TransAlg> Clone for TRule<A> {
    fn clone(&self) -> Self {
        TRule {
            ctor: self.ctor,
            guard: self.guard.clone(),
            lookahead: self.lookahead.clone(),
            output: self.output.clone(),
        }
    }
}

/// A symbolic tree transducer with regular lookahead (STTR).
///
/// The transducer owns two state spaces: *transformation* states (with
/// [`TRule`]s) and a bundled *lookahead* STA whose states are referenced by
/// rule lookaheads. The domain automaton (Definition 6) spans both.
///
/// # Examples
///
/// A transducer implementing the paper's `map_caesar` (Fig. 8):
///
/// ```
/// use fast_core::{Out, SttrBuilder};
/// use fast_smt::{Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
/// use fast_trees::{Tree, TreeType};
/// use std::sync::Arc;
///
/// let ilist = TreeType::new("IList", LabelSig::single("i", Sort::Int),
///                           vec![("nil", 0), ("cons", 1)]);
/// let alg = Arc::new(LabelAlg::new(ilist.sig().clone()));
/// let (nil, cons) = (ilist.ctor_id("nil").unwrap(), ilist.ctor_id("cons").unwrap());
///
/// let mut b = SttrBuilder::new(ilist.clone(), alg);
/// let q = b.state("map_caesar");
/// b.rule(q, nil, Formula::True, vec![],
///        Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]));
/// b.rule(q, cons, Formula::True, vec![Default::default()],
///        Out::node(cons,
///                  LabelFn::new(vec![Term::field(0).add(Term::int(5)).modulo(26)]),
///                  vec![Out::Call(q, 0)]));
/// let map = b.build(q);
///
/// let input = Tree::parse(&ilist, "cons[30](cons[7](nil[0]))").unwrap();
/// let out = map.run(&input).unwrap();
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].display(&ilist).to_string(), "cons[9](cons[12](nil[0]))");
/// ```
#[derive(Debug)]
pub struct Sttr<A: TransAlg<Elem = Label> = LabelAlg> {
    ty: Arc<TreeType>,
    alg: Arc<A>,
    names: Vec<String>,
    rules: Vec<Vec<TRule<A>>>,
    la: Sta<A>,
    initial: StateId,
}

impl<A: TransAlg<Elem = Label>> Clone for Sttr<A> {
    fn clone(&self) -> Self {
        Sttr {
            ty: self.ty.clone(),
            alg: self.alg.clone(),
            names: self.names.clone(),
            rules: self.rules.clone(),
            la: self.la.clone(),
            initial: self.initial,
        }
    }
}

impl<A: TransAlg<Elem = Label>> Sttr<A> {
    /// The tree type.
    pub fn ty(&self) -> &Arc<TreeType> {
        &self.ty
    }

    /// The label algebra.
    pub fn alg(&self) -> &Arc<A> {
        &self.alg
    }

    /// The initial transformation state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of transformation states.
    pub fn state_count(&self) -> usize {
        self.rules.len()
    }

    /// Total number of transformation rules.
    pub fn rule_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// All transformation states.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.rules.len()).map(StateId)
    }

    /// Debug name of a transformation state.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.names[q.0]
    }

    /// Rules of a transformation state.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn rules(&self, q: StateId) -> &[TRule<A>] {
        &self.rules[q.0]
    }

    /// The bundled lookahead automaton (its states are what rule
    /// lookaheads reference).
    pub fn lookahead_sta(&self) -> &Sta<A> {
        &self.la
    }

    /// Re-designates the initial state.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn with_initial(mut self, q: StateId) -> Self {
        assert!(q.0 < self.rules.len());
        self.initial = q;
        self
    }

    pub(crate) fn from_parts(
        ty: Arc<TreeType>,
        alg: Arc<A>,
        names: Vec<String>,
        rules: Vec<Vec<TRule<A>>>,
        la: Sta<A>,
        initial: StateId,
    ) -> Self {
        Sttr {
            ty,
            alg,
            names,
            rules,
            la,
            initial,
        }
    }

    pub(crate) fn push_state(&mut self, name: String) -> StateId {
        self.names.push(name);
        self.rules.push(Vec::new());
        StateId(self.rules.len() - 1)
    }

    pub(crate) fn push_rule(&mut self, q: StateId, rule: TRule<A>) {
        assert_eq!(
            rule.lookahead.len(),
            self.ty.rank(rule.ctor),
            "lookahead arity must equal constructor rank"
        );
        self.rules[q.0].push(rule);
    }

    /// Runs the transduction `T_q0` on `t`, returning the set of outputs
    /// (deduplicated, deterministic order).
    ///
    /// Evaluation recurses on tree depth; inputs tens of thousands of
    /// levels deep may need a larger thread stack.
    ///
    /// # Errors
    ///
    /// Returns a budget error if more than [`DEFAULT_RUN_CAP`] outputs
    /// would be produced.
    pub fn run(&self, t: &Tree) -> Result<Vec<Tree>, TransducerError> {
        self.run_bounded(t, DEFAULT_RUN_CAP)
    }

    /// Runs the transduction at the initial state with an explicit output
    /// cap.
    ///
    /// # Cap contract
    ///
    /// `cap` bounds the size of every intermediate and final output set.
    /// Hitting the cap **errors — it never truncates**: a run either
    /// returns the complete output set (of size ≤ `cap`) or fails with
    /// [`TransducerError::Budget`]. In particular `cap == 0` means "no
    /// outputs allowed": inputs outside the domain still return
    /// `Ok(vec![])`, while any input that would produce an output errors.
    /// `fast-rt`'s `Plan::run_batch` honors the same contract per item.
    ///
    /// # Errors
    ///
    /// Returns [`TransducerError::Budget`] if the intermediate or final
    /// output set would exceed `cap`.
    pub fn run_bounded(&self, t: &Tree, cap: usize) -> Result<Vec<Tree>, TransducerError> {
        self.run_at(self.initial, t, cap)
    }

    /// Runs the transduction `T_q` on `t`.
    ///
    /// # Errors
    ///
    /// Returns [`TransducerError::Budget`] on output-set blowup past `cap`.
    pub fn run_at(&self, q: StateId, t: &Tree, cap: usize) -> Result<Vec<Tree>, TransducerError> {
        let la_map = if self.la.state_count() > 0 {
            Some(self.la.eval_states_map(t))
        } else {
            None
        };
        let mut memo: HashMap<(usize, TreeId), Rc<Vec<Tree>>> = HashMap::new();
        let r = self.transduce(q, t, &la_map, &mut memo, cap)?;
        Ok(r.as_ref().clone())
    }

    fn transduce(
        &self,
        q: StateId,
        t: &Tree,
        la_map: &Option<HashMap<TreeId, BTreeSet<StateId>>>,
        memo: &mut HashMap<(usize, TreeId), Rc<Vec<Tree>>>,
        cap: usize,
    ) -> Result<Rc<Vec<Tree>>, TransducerError> {
        let key = (q.0, t.id());
        if let Some(r) = memo.get(&key) {
            return Ok(r.clone());
        }
        // Deterministic transducers produce at most one output per rule
        // set; defer the (structurally expensive) dedup until more than
        // one candidate actually shows up.
        let mut out: Vec<Tree> = Vec::new();
        for r in self.rules(q) {
            if r.ctor != t.ctor() || !self.alg.eval(&r.guard, t.label()) {
                continue;
            }
            // Lookahead check (Definition 7: tᵢ ∈ L^{ℓᵢ}).
            let la_ok = r.lookahead.iter().enumerate().all(|(i, s)| {
                s.is_empty()
                    || match la_map {
                        Some(m) => s.is_subset(&m[&t.child(i).id()]),
                        None => false,
                    }
            });
            if !la_ok {
                continue;
            }
            out.extend(self.eval_out(&r.output, t, la_map, memo, cap)?);
            if out.len() > cap {
                return Err(TransducerError::Budget {
                    context: "run",
                    limit: cap,
                });
            }
        }
        if out.len() > 1 {
            let set: BTreeSet<Tree> = out.into_iter().collect();
            out = set.into_iter().collect();
        }
        let rc = Rc::new(out);
        memo.insert(key, rc.clone());
        Ok(rc)
    }

    fn eval_out(
        &self,
        out: &Out<A>,
        t: &Tree,
        la_map: &Option<HashMap<TreeId, BTreeSet<StateId>>>,
        memo: &mut HashMap<(usize, TreeId), Rc<Vec<Tree>>>,
        cap: usize,
    ) -> Result<Vec<Tree>, TransducerError> {
        match out {
            Out::Call(q, i) => Ok(self
                .transduce(*q, t.child(*i), la_map, memo, cap)?
                .as_ref()
                .clone()),
            Out::Node {
                ctor,
                fun,
                children,
            } => {
                let Some(label) = self.alg.apply_fun(fun, t.label()) else {
                    return Ok(Vec::new());
                };
                let mut per_child: Vec<Vec<Tree>> = Vec::with_capacity(children.len());
                for c in children {
                    per_child.push(self.eval_out(c, t, la_map, memo, cap)?);
                }
                // Fast path for the deterministic case: exactly one
                // alternative per child, no cartesian machinery.
                if per_child.iter().all(|v| v.len() == 1) {
                    let kids = per_child
                        .into_iter()
                        .map(|mut v| v.pop().unwrap())
                        .collect();
                    return Ok(vec![Tree::new(*ctor, label, kids)]);
                }
                // Cartesian product over child alternatives.
                let mut acc: Vec<Vec<Tree>> = vec![Vec::with_capacity(children.len())];
                for opts in &per_child {
                    let mut next = Vec::with_capacity(acc.len() * opts.len().max(1));
                    for partial in &acc {
                        for o in opts {
                            let mut p = partial.clone();
                            p.push(o.clone());
                            next.push(p);
                            if next.len() > cap {
                                return Err(TransducerError::Budget {
                                    context: "run",
                                    limit: cap,
                                });
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc
                    .into_iter()
                    .map(|kids| Tree::new(*ctor, label.clone(), kids))
                    .collect())
            }
        }
    }

    /// The domain automaton `d(S)` (Definition 6): an STA over the
    /// combined state space (transformation states first, then lookahead
    /// states) accepting at `q` exactly the trees on which `T_q` is
    /// defined.
    pub fn domain(&self) -> Sta<A> {
        let mut out: Sta<A> = Sta::from_parts(
            self.ty.clone(),
            self.alg.clone(),
            Vec::new(),
            Vec::new(),
            StateId(0),
        );
        let n = self.state_count();
        for q in self.states() {
            out.push_state(format!("d:{}", self.names[q.0]));
        }
        for s in self.la.states() {
            out.push_state(format!("la:{}", self.la.state_name(s)));
        }
        // Lookahead rules, offset by n.
        for s in self.la.states() {
            for r in self.la.rules(s) {
                out.push_rule(
                    StateId(s.0 + n),
                    StaRule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|set| set.iter().map(|q| StateId(q.0 + n)).collect())
                            .collect(),
                    },
                );
            }
        }
        // Transformation rules: lookahead ∪ St(i, output).
        for q in self.states() {
            for r in self.rules(q) {
                let lookahead = (0..r.lookahead.len())
                    .map(|i| {
                        let mut set: BTreeSet<StateId> =
                            r.lookahead[i].iter().map(|s| StateId(s.0 + n)).collect();
                        let mut st = BTreeSet::new();
                        r.output.states_on_child(i, &mut st);
                        set.extend(st);
                        set
                    })
                    .collect();
                out.push_rule(
                    q,
                    StaRule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead,
                    },
                );
            }
        }
        out.with_initial(self.initial)
    }

    /// Removes provably redundant lookahead: states of the lookahead STA
    /// that accept *every* tree (detected by a greatest-fixpoint over
    /// syntactically-true guards) are dropped from rule lookahead sets,
    /// and lookahead states no longer referenced are garbage-collected.
    ///
    /// Composition chains produce one trivial lookahead pair per layer
    /// (e.g. fusing `map` with itself n times); without pruning, running
    /// the fused transducer would pay O(n) lookahead evaluation per node,
    /// defeating deforestation (§5.3).
    pub fn prune_lookahead(&self) -> Sttr<A> {
        let la = &self.la;
        let tt = self.alg.tt();
        // Greatest fixpoint: assume universal, demote states lacking an
        // unconditioned rule for some constructor.
        let mut universal = vec![true; la.state_count()];
        loop {
            let mut changed = false;
            for q in la.states() {
                if !universal[q.0] {
                    continue;
                }
                let ok = self.ty.ctor_ids().all(|ctor| {
                    la.rules(q).iter().any(|r| {
                        r.ctor == ctor
                            && r.guard == tt
                            && r.lookahead.iter().all(|s| s.iter().all(|p| universal[p.0]))
                    })
                });
                if !ok {
                    universal[q.0] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Strip universal states from transducer rule lookaheads.
        let stripped: Vec<Vec<TRule<A>>> = self
            .rules
            .iter()
            .map(|rs| {
                rs.iter()
                    .map(|r| TRule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|s| s.iter().copied().filter(|p| !universal[p.0]).collect())
                            .collect(),
                        output: r.output.clone(),
                    })
                    .collect()
            })
            .collect();
        // Reachable lookahead states (transitively through LA rules).
        let mut reach = vec![false; la.state_count()];
        let mut stack: Vec<StateId> = stripped
            .iter()
            .flatten()
            .flat_map(|r| r.lookahead.iter().flatten().copied())
            .collect();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut reach[s.0], true) {
                continue;
            }
            for r in la.rules(s) {
                for set in &r.lookahead {
                    stack.extend(set.iter().copied());
                }
            }
        }
        // Rebuild the lookahead STA with remapped ids.
        let mut remap = vec![usize::MAX; la.state_count()];
        let mut new_la: Sta<A> = Sta::from_parts(
            self.ty.clone(),
            self.alg.clone(),
            Vec::new(),
            Vec::new(),
            StateId(0),
        );
        for q in la.states() {
            if reach[q.0] {
                remap[q.0] = new_la.push_state(la.state_name(q).to_string()).0;
            }
        }
        for q in la.states() {
            if !reach[q.0] {
                continue;
            }
            for r in la.rules(q) {
                new_la.push_rule(
                    StateId(remap[q.0]),
                    fast_automata::Rule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|s| s.iter().map(|p| StateId(remap[p.0])).collect())
                            .collect(),
                    },
                );
            }
        }
        let rules: Vec<Vec<TRule<A>>> = stripped
            .into_iter()
            .map(|rs| {
                rs.into_iter()
                    .map(|r| TRule {
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|s| s.iter().map(|p| StateId(remap[p.0])).collect())
                            .collect(),
                        ..r
                    })
                    .collect()
            })
            .collect();
        Sttr {
            ty: self.ty.clone(),
            alg: self.alg.clone(),
            names: self.names.clone(),
            rules,
            la: new_la,
            initial: self.initial,
        }
    }

    /// Linearity (Definition 5): every rule's output uses each input child
    /// at most once. Linear transducers compose exactly on the right
    /// (Theorem 4).
    pub fn is_linear(&self) -> bool {
        self.nonlinear_rule().is_none()
    }

    /// The first rule whose output uses some input child more than once —
    /// the witness that the transducer is *not* linear — as
    /// `(state, rule index)`. `None` iff [`Sttr::is_linear`].
    pub fn nonlinear_rule(&self) -> Option<(StateId, usize)> {
        for q in self.states() {
            for (idx, r) in self.rules(q).iter().enumerate() {
                let mut counts = Vec::new();
                r.output.child_use_counts(&mut counts);
                if counts.iter().any(|&c| c > 1) {
                    return Some((q, idx));
                }
            }
        }
        None
    }

    /// Determinism (Definition 9): no two distinct rules of the same state
    /// and constructor are simultaneously enabled — guards jointly
    /// satisfiable *and* lookahead languages jointly non-empty — unless
    /// they have identical outputs. Determinism implies single-valuedness,
    /// the left-composability condition of Theorem 4.
    ///
    /// # Errors
    ///
    /// Propagates automata state-budget errors from the lookahead
    /// intersection tests.
    pub fn is_deterministic(&self) -> Result<bool, TransducerError> {
        Ok(self.nondeterministic_rules()?.is_none())
    }

    /// The first pair of simultaneously-enabled rules with different
    /// outputs — the witness that the transducer is *not* deterministic —
    /// as `(state, rule index a, rule index b)`. `None` iff
    /// [`Sttr::is_deterministic`].
    ///
    /// # Errors
    ///
    /// Propagates automata state-budget errors from the lookahead
    /// intersection tests.
    pub fn nondeterministic_rules(
        &self,
    ) -> Result<Option<(StateId, usize, usize)>, TransducerError> {
        for q in self.states() {
            let rs = self.rules(q);
            for a in 0..rs.len() {
                for b in (a + 1)..rs.len() {
                    let (ra, rb) = (&rs[a], &rs[b]);
                    if ra.ctor != rb.ctor || ra.output == rb.output {
                        continue;
                    }
                    if !self.alg.is_sat(&self.alg.and(&ra.guard, &rb.guard)) {
                        continue;
                    }
                    let mut overlap = true;
                    for i in 0..ra.lookahead.len() {
                        let joint: BTreeSet<StateId> =
                            ra.lookahead[i].union(&rb.lookahead[i]).copied().collect();
                        if joint.is_empty() {
                            continue;
                        }
                        let (norm, roots) = normalize_rooted(&self.la, vec![joint])?;
                        let ne = nonempty_states(&norm);
                        if !ne[roots[0].0] {
                            overlap = false;
                            break;
                        }
                    }
                    if overlap {
                        return Ok(Some((q, a, b)));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Single-valuedness — the left-composability precondition of
    /// Theorem 4 (`|T_q(t)| ≤ 1` for every input).
    ///
    /// Semantic decision with the default [`crate::SvBudget`]: `true` for
    /// transducers proven deterministic (Definition 9) *or* proven
    /// output-equivalent on every rule overlap by the product
    /// construction of [`crate::sv`]. Ambiguous and budget-limited
    /// `Unknown` verdicts answer `false`, so callers gating composition
    /// exactness on this never treat an inexact fusion as exact. Use
    /// [`Sttr::single_valuedness`] directly for the three-way verdict.
    pub fn is_single_valued(&self) -> bool {
        self.single_valuedness(crate::sv::SvBudget::default())
            .is_single()
    }

    /// Renders one rule as `state#idx: ctor` for witness messages.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `idx` is out of range.
    pub fn describe_rule(&self, q: StateId, idx: usize) -> String {
        let r = &self.rules[q.0][idx];
        format!("{}#{idx}: {}", self.names[q.0], self.ty.ctor_name(r.ctor))
    }
}

impl<A: TransAlg<Elem = Label>> fmt::Display for Sttr<A>
where
    A::Pred: fmt::Display,
    A::Fun: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "STTR over {} ({} states, {} rules, {} lookahead states, initial {})",
            self.ty.name(),
            self.state_count(),
            self.rule_count(),
            self.la.state_count(),
            self.initial
        )?;
        for q in self.states() {
            for r in self.rules(q) {
                write!(
                    f,
                    "  {}[{}]: {}[x] where {} ",
                    q,
                    self.names[q.0],
                    self.ty.ctor_name(r.ctor),
                    r.guard
                )?;
                write!(f, "given (")?;
                for (i, s) in r.lookahead.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{{")?;
                    for (j, x) in s.iter().enumerate() {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{x}")?;
                    }
                    write!(f, "}}")?;
                }
                write!(f, ") to ")?;
                fmt_out(f, &r.output, &self.ty)?;
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

fn fmt_out<A: TransAlg>(f: &mut fmt::Formatter<'_>, out: &Out<A>, ty: &TreeType) -> fmt::Result
where
    A::Fun: fmt::Display,
{
    match out {
        Out::Call(q, i) => write!(f, "({q} y{i})"),
        Out::Node {
            ctor,
            fun,
            children,
        } => {
            write!(f, "({}{}", ty.ctor_name(*ctor), fun)?;
            for c in children {
                write!(f, " ")?;
                fmt_out(f, c, ty)?;
            }
            write!(f, ")")
        }
    }
}

/// Incremental builder for [`Sttr`]s.
#[derive(Debug)]
pub struct SttrBuilder<A: TransAlg<Elem = Label> = LabelAlg> {
    sttr: Sttr<A>,
}

impl<A: TransAlg<Elem = Label>> SttrBuilder<A> {
    /// Starts building over `ty` with algebra `alg` and no lookahead
    /// automaton.
    pub fn new(ty: Arc<TreeType>, alg: Arc<A>) -> Self {
        let la = Sta::from_parts(ty.clone(), alg.clone(), Vec::new(), Vec::new(), StateId(0));
        SttrBuilder {
            sttr: Sttr {
                ty,
                alg,
                names: Vec::new(),
                rules: Vec::new(),
                la,
                initial: StateId(0),
            },
        }
    }

    /// Installs a lookahead automaton; rule lookahead sets refer to its
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if the automaton's tree type differs.
    pub fn with_lookahead(mut self, la: Sta<A>) -> Self {
        assert_eq!(la.ty(), &self.sttr.ty, "lookahead STA over wrong tree type");
        self.sttr.la = la;
        self
    }

    /// Declares a transformation state.
    pub fn state(&mut self, name: &str) -> StateId {
        self.sttr.push_state(name.to_string())
    }

    /// Adds a rule.
    ///
    /// The guard is anything convertible into the algebra's predicate
    /// type — for [`LabelAlg`](fast_smt::LabelAlg) a plain
    /// [`Formula`](fast_smt::Formula) works and is interned on the way in.
    ///
    /// # Panics
    ///
    /// Panics if the lookahead arity differs from the constructor rank.
    pub fn rule(
        &mut self,
        q: StateId,
        ctor: CtorId,
        guard: impl Into<A::Pred>,
        lookahead: Vec<BTreeSet<StateId>>,
        output: Out<A>,
    ) {
        self.sttr.push_rule(
            q,
            TRule {
                ctor,
                guard: guard.into(),
                lookahead,
                output,
            },
        );
    }

    /// Adds a rule with no lookahead (all children unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if the constructor rank disagrees with the tree type.
    pub fn plain_rule(
        &mut self,
        q: StateId,
        ctor: CtorId,
        guard: impl Into<A::Pred>,
        output: Out<A>,
    ) {
        let rank = self.sttr.ty.rank(ctor);
        self.rule(q, ctor, guard, vec![BTreeSet::new(); rank], output);
    }

    /// Copies another transducer's transformation states, rules, and
    /// lookahead automaton into this builder, returning
    /// `(state_offset, lookahead_offset)` to translate the other's ids.
    /// Used by front-ends to let one transformation call another.
    ///
    /// # Panics
    ///
    /// Panics if the tree types differ.
    pub fn absorb(&mut self, other: &Sttr<A>) -> (usize, usize) {
        assert_eq!(self.sttr.ty, *other.ty(), "tree type mismatch");
        let la_offset = self.sttr.la.absorb(other.lookahead_sta());
        let offset = self.sttr.rules.len();
        for q in other.states() {
            self.sttr.names.push(other.state_name(q).to_string());
            self.sttr.rules.push(
                other
                    .rules(q)
                    .iter()
                    .map(|r| TRule {
                        ctor: r.ctor,
                        guard: r.guard.clone(),
                        lookahead: r
                            .lookahead
                            .iter()
                            .map(|s| s.iter().map(|x| StateId(x.0 + la_offset)).collect())
                            .collect(),
                        output: r.output.map_states(&|x| StateId(x.0 + offset)),
                    })
                    .collect(),
            );
        }
        (offset, la_offset)
    }

    /// Copies a language automaton into the bundled lookahead STA,
    /// returning the offset added to its state ids.
    ///
    /// # Panics
    ///
    /// Panics if the tree types differ.
    pub fn absorb_lookahead(&mut self, la: &Sta<A>) -> usize {
        self.sttr.la.absorb(la)
    }

    /// Number of transformation states declared so far.
    pub fn state_count(&self) -> usize {
        self.sttr.rules.len()
    }

    /// Finishes, designating `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range.
    pub fn build(self, initial: StateId) -> Sttr<A> {
        assert!(initial.0 < self.sttr.rules.len());
        let mut s = self.sttr;
        s.initial = initial;
        s
    }
}

/// Constructs the identity STTR `I` over a tree type: one state copying
/// every node verbatim.
pub fn identity<A: TransAlg<Elem = Label>>(ty: &Arc<TreeType>, alg: &Arc<A>) -> Sttr<A> {
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let q = b.state("id");
    for ctor in ty.ctor_ids() {
        let kids = (0..ty.rank(ctor)).map(|i| Out::Call(q, i)).collect();
        b.plain_rule(q, ctor, alg.tt(), Out::node(ctor, alg.identity_fun(), kids));
    }
    b.build(q)
}

/// Constructs `restrict I L`: the identity transducer defined exactly on
/// the language of `sta`'s designated state. This is the building block
/// for `restrict` and `restrict-out` (§3.5): it is single-valued *and*
/// linear, so compositions with it are always exact by Theorem 4.
///
/// # Errors
///
/// Propagates normalization budget errors.
pub fn identity_restricted<A: TransAlg<Elem = Label>>(
    sta: &Sta<A>,
) -> Result<Sttr<A>, TransducerError> {
    let norm = fast_automata::clean(&fast_automata::normalize(sta)?);
    let alg = norm.alg().clone();
    let ty = norm.ty().clone();
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    // One transformation state per normalized STA state.
    let states: Vec<StateId> = norm
        .states()
        .map(|s| b.state(&format!("id:{}", norm.state_name(s))))
        .collect();
    for s in norm.states() {
        for r in norm.rules(s) {
            let kids = (0..r.lookahead.len())
                .map(|i| {
                    let child = r.lookahead[i].iter().next().expect("normalized");
                    Out::Call(states[child.0], i)
                })
                .collect();
            b.plain_rule(
                states[s.0],
                r.ctor,
                r.guard.clone(),
                Out::node(r.ctor, alg.identity_fun(), kids),
            );
        }
    }
    Ok(b.build(states[norm.initial().0]))
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use fast_smt::{Formula, LabelFn, LabelSig, Sort, Term};

    pub fn ilist() -> Arc<TreeType> {
        TreeType::new(
            "IList",
            LabelSig::single("i", Sort::Int),
            vec![("nil", 0), ("cons", 1)],
        )
    }

    pub fn ilist_alg(ty: &TreeType) -> Arc<LabelAlg> {
        Arc::new(LabelAlg::new(ty.sig().clone()))
    }

    /// Fig. 8 `map_caesar`: x ↦ (x+5) % 26 on every element.
    pub fn map_caesar() -> Sttr {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("map_caesar");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::field(0).add(Term::int(5)).modulo(26)]),
                vec![Out::Call(q, 0)],
            ),
        );
        b.build(q)
    }

    /// Fig. 8 `filter_ev`: keep even elements, drop odd ones.
    pub fn filter_ev() -> Sttr {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let even = Formula::eq(Term::field(0).modulo(2), Term::int(0));
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("filter_ev");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            even.clone(),
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
        );
        b.plain_rule(q, cons, even.not(), Out::Call(q, 0));
        b.build(q)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use fast_smt::{Formula, LabelFn, Term};

    #[test]
    fn map_caesar_runs() {
        let m = map_caesar();
        let ty = m.ty().clone();
        let t = Tree::parse(&ty, "cons[30](cons[7](cons[-6](nil[0])))").unwrap();
        let out = m.run(&t).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].display(&ty).to_string(),
            "cons[9](cons[12](cons[25](nil[0])))"
        );
    }

    #[test]
    fn filter_drops_odds() {
        let f = filter_ev();
        let ty = f.ty().clone();
        let t = Tree::parse(&ty, "cons[1](cons[2](cons[3](cons[4](nil[7]))))").unwrap();
        let out = f.run(&t).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].display(&ty).to_string(), "cons[2](cons[4](nil[0]))");
    }

    #[test]
    fn identity_copies() {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let id = identity(&ty, &alg);
        let t = Tree::parse(&ty, "cons[5](nil[1])").unwrap();
        assert_eq!(id.run(&t).unwrap(), vec![t]);
        assert!(id.is_linear());
        assert!(id.is_deterministic().unwrap());
    }

    #[test]
    fn linearity_and_determinism() {
        let m = map_caesar();
        assert!(m.is_linear());
        assert!(m.is_deterministic().unwrap());
        let f = filter_ev();
        assert!(f.is_linear());
        assert!(f.is_deterministic().unwrap());

        // A nondeterministic transducer: two overlapping cons rules with
        // different outputs.
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("q");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::int(5)]),
                vec![Out::Call(q, 0)],
            ),
        );
        let nd = b.build(q);
        assert!(!nd.is_deterministic().unwrap());
        // Nondeterministic run yields multiple outputs.
        let t = Tree::parse(nd.ty(), "cons[1](nil[0])").unwrap();
        assert_eq!(nd.run(&t).unwrap().len(), 2);
    }

    #[test]
    fn duplication_is_nonlinear() {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let cons = ty.ctor_id("cons").unwrap();
        let nil = ty.ctor_id("nil").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("dup");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::identity(1),
                vec![Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)])],
            ),
        );
        let lin = b.build(q);
        assert!(lin.is_linear());

        let ty2 = ilist();
        let alg2 = ilist_alg(&ty2);
        let mut b = SttrBuilder::new(ty2, alg2);
        let q = b.state("dup");
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::identity(1),
                vec![Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)])],
            ),
        );
        // Use child 0 twice via a second call in the same rule.
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        let mut counts = Vec::new();
        Out::<LabelAlg>::Call(q, 0).child_use_counts(&mut counts);
        assert_eq!(counts, vec![1]);
        let nonlin_out: Out<LabelAlg> = Out::node(
            cons,
            LabelFn::identity(1),
            vec![Out::Call(q, 0), Out::Call(q, 0)],
        );
        let mut counts = Vec::new();
        nonlin_out.child_use_counts(&mut counts);
        assert!(counts[0] == 2);
    }

    #[test]
    fn domain_automaton_of_filter() {
        let f = filter_ev();
        let d = f.domain();
        let ty = f.ty().clone();
        // filter_ev is total on lists.
        for text in ["nil[0]", "cons[1](nil[0])", "cons[2](cons[3](nil[0]))"] {
            assert!(d.accepts(&Tree::parse(&ty, text).unwrap()));
        }
    }

    #[test]
    fn identity_restricted_respects_language() {
        use fast_automata::StaBuilder;
        // Language: lists whose elements are all even.
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let even = Formula::eq(Term::field(0).modulo(2), Term::int(0));
        let mut b = StaBuilder::new(ty.clone(), alg.clone());
        let s = b.state("evens");
        b.leaf_rule(s, nil, Formula::True);
        b.simple_rule(s, cons, even, vec![Some(s)]);
        let evens = b.build(s);

        let idr = identity_restricted(&evens).unwrap();
        assert!(idr.is_linear());
        let ok = Tree::parse(&ty, "cons[2](cons[4](nil[0]))").unwrap();
        let bad = Tree::parse(&ty, "cons[2](cons[3](nil[0]))").unwrap();
        assert_eq!(idr.run(&ok).unwrap(), vec![ok.clone()]);
        assert!(idr.run(&bad).unwrap().is_empty());
    }

    #[test]
    fn run_cap_enforced() {
        // A transducer with 2^n outputs: each element may stay or change.
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty.clone(), alg);
        let q = b.state("q");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::int(99)]),
                vec![Out::Call(q, 0)],
            ),
        );
        let nd = b.build(q);
        let mut text = String::from("nil[0]");
        for i in 0..10 {
            text = format!("cons[{i}]({text})");
        }
        let t = Tree::parse(nd.ty(), &text).unwrap();
        assert_eq!(nd.run(&t).unwrap().len(), 1 << 10);
        assert!(nd.run_bounded(&t, 100).is_err());
    }
}
