//! Composition of STTRs — the paper's main algorithm (§4.1) — and
//! pre-image computation, which shares the `Look` machinery.
//!
//! Given STTRs `S` and `T`, `compose(S, T)` builds `S∘T` with
//! `T_{S∘T} ⊇ T_T ∘ T_S` always, and equality when `S` is single-valued or
//! `T` is linear (Theorem 4). The construction is a least fixpoint over
//! *pair states* `p.q` starting from the initial pair: each composed rule
//! arises from a constrained rewrite reduction (`Reduce`) of a `T` state
//! applied to an `S` output, with label constraints propagated through
//! output label functions (`ψ(e(x))`) and regular lookahead carried by the
//! pre-image pairs produced by `Look`.

use crate::error::TransducerError;
use crate::out::Out;
use crate::sttr::{Sttr, TRule};
use fast_automata::{clean, normalize, normalize_rooted, Rule as StaRule, Sta, StateId};
use fast_smt::{Label, TransAlg};
use fast_trees::CtorId;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Budget on composed transformation rules.
pub const MAX_COMPOSED_RULES: usize = 1 << 17;

/// Tuning knobs for [`compose_with`] (used by the DESIGN.md §6 ablation
/// benchmarks; the defaults match the paper's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct ComposeOptions {
    /// Eagerly drop reduction branches whose accumulated guard is
    /// unsatisfiable (the `IsSat` check in `Look` step 2(a)). Disabling
    /// this keeps the result semantically equivalent — rules with
    /// unsatisfiable guards never fire — but lets rule counts blow up.
    pub prune_unsat: bool,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions { prune_unsat: true }
    }
}
/// Budget on composed pair states (transformation or lookahead).
pub const MAX_PAIR_STATES: usize = 1 << 13;

/// The exactness verdict of a composition — *why* `T_{S∘T} = T_T ∘ T_S`
/// holds, or the Theorem 4 witnesses showing it may not.
///
/// [`compose`] always returns `T_{S∘T} ⊇ T_T ∘ T_S`; equality is
/// guaranteed only under one of the first two variants. The verdict is
/// part of [`Composed`], so no caller can silently treat an
/// over-approximation as exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exactness {
    /// The left factor is single-valued (proven via determinism,
    /// Definition 9), so composition is exact.
    LeftSingleValued,
    /// The right factor is linear (Definition 5), so composition is
    /// exact.
    RightLinear,
    /// Neither precondition holds: the composed transduction is a
    /// (possibly strict) over-approximation of `T_T ∘ T_S`.
    Overapproximate {
        /// Why the left factor is not (provably) single-valued: the
        /// overlapping rule pair, or the undecided-check error.
        left_witness: String,
        /// The right-factor rule whose output duplicates an input child.
        right_witness: String,
    },
}

impl Exactness {
    /// `true` iff the composed transduction equals `T_T ∘ T_S`.
    pub fn is_exact(&self) -> bool {
        !matches!(self, Exactness::Overapproximate { .. })
    }
}

impl std::fmt::Display for Exactness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exactness::LeftSingleValued => write!(f, "exact: left factor is single-valued"),
            Exactness::RightLinear => write!(f, "exact: right factor is linear"),
            Exactness::Overapproximate {
                left_witness,
                right_witness,
            } => write!(
                f,
                "over-approximate: left not single-valued ({left_witness}), \
                 right not linear ({right_witness})"
            ),
        }
    }
}

/// A composed transducer together with its exactness verdict.
#[derive(Debug)]
pub struct Composed<A: TransAlg<Elem = Label> = fast_smt::LabelAlg> {
    /// The composed STTR (`T_{sttr} ⊇ T_t ∘ T_s`, `=` iff
    /// `exactness.is_exact()`).
    pub sttr: Sttr<A>,
    /// Whether (and why) the composition is exact.
    pub exactness: Exactness,
}

impl<A: TransAlg<Elem = Label>> Composed<A> {
    /// Unwraps the transducer, discarding the verdict. Use only where
    /// exactness was already established (or over-approximation is the
    /// intended semantics, as in pre-image-style analyses).
    pub fn into_sttr(self) -> Sttr<A> {
        self.sttr
    }
}

/// Decides the Theorem 4 exactness verdict for `compose(s, t)` without
/// building the composition.
///
/// Left single-valuedness is decided *semantically* via
/// [`Sttr::single_valuedness`]: determinism (cheap) first, then — only
/// when the right factor is nonlinear, so the verdict actually matters —
/// the bounded output-equivalence product construction. A
/// single-valued-but-nondeterministic left factor therefore composes
/// exactly where the determinism-only check had to over-approximate.
pub fn compose_exactness<A: TransAlg<Elem = Label>>(s: &Sttr<A>, t: &Sttr<A>) -> Exactness {
    if matches!(s.nondeterministic_rules(), Ok(None)) {
        return Exactness::LeftSingleValued;
    }
    // Right linearity makes the composition exact regardless of the left
    // factor, so don't spend the semantic decision unless it matters.
    let nonlinear = t.nonlinear_rule();
    if nonlinear.is_none() {
        return Exactness::RightLinear;
    }
    let verdict = s.single_valuedness(crate::sv::SvBudget::default());
    if verdict.is_single() {
        return Exactness::LeftSingleValued;
    }
    match nonlinear {
        None => Exactness::RightLinear,
        Some((q, idx)) => Exactness::Overapproximate {
            left_witness: match verdict {
                crate::sv::SvVerdict::Ambiguous { witness, outputs } => format!(
                    "ambiguous: {} outputs on input {}",
                    outputs,
                    witness.display(s.ty())
                ),
                crate::sv::SvVerdict::Unknown { reason } => {
                    format!("single-valuedness undecided: {reason}")
                }
                crate::sv::SvVerdict::Single(_) => unreachable!("handled above"),
            },
            right_witness: format!("rule {} uses an input child twice", t.describe_rule(q, idx)),
        },
    }
}

/// Guard–lookahead pairs produced by `Look`.
type Looked<A> = Vec<(<A as fast_smt::BoolAlg>::Pred, Vec<BTreeSet<StateId>>)>;

/// Keeps composed state names readable when compositions nest deeply.
fn clip_name(s: &str) -> String {
    const MAX: usize = 48;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let head: String = s.chars().take(MAX - 1).collect();
        format!("{head}…")
    }
}

/// Extended terms manipulated by `Reduce`: `T`-state applications over
/// `S`-output subterms, plus already-instantiated output nodes.
enum Ext<'o, A: TransAlg> {
    /// `q̃(t)` where `q` is a `T` state and `t` an `S`-output subterm.
    TApp(StateId, &'o Out<A>),
    /// An output node with a composed label function.
    Node {
        ctor: CtorId,
        fun: A::Fun,
        children: Vec<Ext<'o, A>>,
    },
}

/// Builds pre-image pair states `(p, d)` denoting
/// `{ t | ∃u ∈ T_p(t), u ∈ L_d }` for `p` a transformation state of `s`
/// and `d` a state of the normalized target automaton `dt`.
struct PreimageBuilder<'a, A: TransAlg<Elem = Label>> {
    s: &'a Sttr<A>,
    dt: &'a Sta<A>,
    opts: ComposeOptions,
    /// The automaton under construction; starts as a copy of `s`'s
    /// lookahead STA so `s`-lookahead ids stay valid.
    out: Sta<A>,
    pairs: HashMap<(StateId, StateId), StateId>,
    queue: VecDeque<(StateId, StateId)>,
}

impl<'a, A: TransAlg<Elem = Label>> PreimageBuilder<'a, A> {
    fn new(s: &'a Sttr<A>, dt: &'a Sta<A>, opts: ComposeOptions) -> Self {
        PreimageBuilder {
            s,
            dt,
            opts,
            out: s.lookahead_sta().clone(),
            pairs: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    fn pair(&mut self, p: StateId, d: StateId) -> Result<StateId, TransducerError> {
        if let Some(&id) = self.pairs.get(&(p, d)) {
            return Ok(id);
        }
        if self.pairs.len() >= MAX_PAIR_STATES {
            return Err(TransducerError::Budget {
                context: "pre-image pair states",
                limit: MAX_PAIR_STATES,
            });
        }
        let name = clip_name(&format!(
            "{}⋅{}",
            self.s.state_name(p),
            self.dt.state_name(d)
        ));
        let id = self.out.push_state(name);
        self.pairs.insert((p, d), id);
        self.queue.push_back((p, d));
        fast_obs::count!("compose.preimage_pairs");
        Ok(id)
    }

    /// The `Look` procedure over an `S`-output term: accumulates label
    /// constraints from `dt` rules (substituted through output label
    /// functions) and records pair requirements for `S`-subtree calls.
    fn look(
        &mut self,
        gamma: A::Pred,
        la: Vec<BTreeSet<StateId>>,
        d: StateId,
        out: &Out<A>,
    ) -> Result<Looked<A>, TransducerError> {
        let alg = self.s.alg().clone();
        match out {
            Out::Call(p, i) => {
                let pd = self.pair(*p, d)?;
                let mut la = la;
                la[*i].insert(pd);
                Ok(vec![(gamma, la)])
            }
            Out::Node {
                ctor,
                fun,
                children,
            } => {
                let mut results = Vec::new();
                let dt_rules: Vec<(A::Pred, Vec<StateId>)> = self
                    .dt
                    .rules(d)
                    .iter()
                    .filter(|r| r.ctor == *ctor)
                    .map(|r| {
                        (
                            r.guard.clone(),
                            r.lookahead
                                .iter()
                                .map(|s| *s.iter().next().expect("dt is normalized"))
                                .collect(),
                        )
                    })
                    .collect();
                for (psi, kids_d) in dt_rules {
                    let g = alg.and(&gamma, &alg.subst_pred(&psi, fun));
                    if self.opts.prune_unsat && !alg.is_sat(&g) {
                        continue;
                    }
                    let mut branch = vec![(g, la.clone())];
                    for (i, child) in children.iter().enumerate() {
                        let mut next = Vec::new();
                        for (bg, bla) in branch {
                            next.extend(self.look(bg, bla, kids_d[i], child)?);
                        }
                        branch = next;
                        if branch.is_empty() {
                            break;
                        }
                    }
                    results.extend(branch);
                }
                Ok(results)
            }
        }
    }

    /// Processes all queued pairs, adding their STA rules (idempotent).
    fn drain(&mut self) -> Result<(), TransducerError> {
        while let Some((p, d)) = self.queue.pop_front() {
            let me = self.pairs[&(p, d)];
            for rule in self.s.rules(p).to_vec() {
                let rank = rule.lookahead.len();
                let base = vec![BTreeSet::new(); rank];
                for (g, la) in self.look(rule.guard.clone(), base, d, &rule.output)? {
                    let lookahead = (0..rank)
                        .map(|i| {
                            // s-lookahead ids are preserved in `out`.
                            rule.lookahead[i]
                                .iter()
                                .copied()
                                .chain(la[i].iter().copied())
                                .collect()
                        })
                        .collect();
                    self.out.push_rule(
                        me,
                        StaRule {
                            ctor: rule.ctor,
                            guard: g,
                            lookahead,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}

/// Computes the pre-image STA: its designated state accepts exactly
/// `{ t | ∃u ∈ T_{sttr}(t), u ∈ L(target) }` (the language `pre-image t l`
/// of §3.5).
///
/// # Errors
///
/// Propagates state-budget errors.
///
/// # Panics
///
/// Panics if the transducer and automaton have different tree types.
pub fn preimage<A: TransAlg<Elem = Label>>(
    sttr: &Sttr<A>,
    target: &Sta<A>,
) -> Result<Sta<A>, TransducerError> {
    assert_eq!(sttr.ty(), target.ty(), "tree type mismatch");
    let _span = fast_obs::span!("compose.preimage");
    let norm = clean(&normalize(target)?);
    let mut b = PreimageBuilder::new(sttr, &norm, ComposeOptions::default());
    let root = b.pair(sttr.initial(), norm.initial())?;
    b.drain()?;
    Ok(b.out.with_initial(root))
}

/// Mutable composition state shared by `Reduce`.
struct ComposeCtx<'a, A: TransAlg<Elem = Label>> {
    s: &'a Sttr<A>,
    t: &'a Sttr<A>,
    la: PreimageBuilder<'a, A>,
    /// `(t-state, rule index, child) → dt state` for the domain-rule child
    /// requirements of every `t` rule.
    dt_child: HashMap<(usize, usize, usize), StateId>,
    names: Vec<String>,
    rules: Vec<Vec<TRule<A>>>,
    pair_ids: HashMap<(StateId, StateId), StateId>,
    pair_queue: VecDeque<(StateId, StateId)>,
    total_rules: usize,
}

type Reduced<A> = (
    <A as fast_smt::BoolAlg>::Pred,
    Vec<BTreeSet<StateId>>,
    Out<A>,
);

impl<'a, A: TransAlg<Elem = Label>> ComposeCtx<'a, A> {
    fn trans_pair(&mut self, p: StateId, q: StateId) -> Result<StateId, TransducerError> {
        if let Some(&id) = self.pair_ids.get(&(p, q)) {
            return Ok(id);
        }
        if self.pair_ids.len() >= MAX_PAIR_STATES {
            return Err(TransducerError::Budget {
                context: "composed pair states",
                limit: MAX_PAIR_STATES,
            });
        }
        let id = StateId(self.names.len());
        self.names.push(clip_name(&format!(
            "{}.{}",
            self.s.state_name(p),
            self.t.state_name(q)
        )));
        self.rules.push(Vec::new());
        self.pair_ids.insert((p, q), id);
        self.pair_queue.push_back((p, q));
        fast_obs::count!("compose.pair_states");
        Ok(id)
    }

    /// Instantiates a `t`-rule output on an `S`-output node: `x := e(x)`
    /// (label-function composition) and `ȳ := ū` (the node's children).
    fn instantiate<'o>(&self, out: &Out<A>, e: &A::Fun, s_children: &'o [Out<A>]) -> Ext<'o, A> {
        match out {
            Out::Call(q2, j) => Ext::TApp(*q2, &s_children[*j]),
            Out::Node {
                ctor,
                fun,
                children,
            } => Ext::Node {
                ctor: *ctor,
                fun: self.s.alg().compose_fun(fun, e),
                children: children
                    .iter()
                    .map(|c| self.instantiate(c, e, s_children))
                    .collect(),
            },
        }
    }

    /// The `Reduce` procedure: rewrites `v` until no `T` application
    /// remains, collecting guard and lookahead constraints plus the
    /// composed output term.
    fn reduce(
        &mut self,
        gamma: A::Pred,
        la: Vec<BTreeSet<StateId>>,
        v: &Ext<'_, A>,
    ) -> Result<Vec<Reduced<A>>, TransducerError> {
        fast_obs::count!("compose.reduce_iterations");
        let _span = fast_obs::span!("compose.reduce");
        let alg = self.s.alg().clone();
        match v {
            // Case 1: q̃(p̃(yᵢ)) → p.q(yᵢ).
            Ext::TApp(q, Out::Call(p, i)) => {
                let pq = self.trans_pair(*p, *q)?;
                Ok(vec![(gamma, la, Out::Call(pq, *i))])
            }
            // Case 2: q̃(g[e(x)](ū)).
            Ext::TApp(
                q,
                Out::Node {
                    ctor,
                    fun,
                    children,
                },
            ) => {
                let mut results = Vec::new();
                let taus = self.t.rules(*q).to_vec();
                for (ri, tau) in taus.iter().enumerate() {
                    if tau.ctor != *ctor {
                        continue;
                    }
                    // Guard of τ through the S-output label function (Look
                    // on the virtual state q_τ, step 2(b)).
                    let g1 = alg.and(&gamma, &alg.subst_pred(&tau.guard, fun));
                    if self.la.opts.prune_unsat && !alg.is_sat(&g1) {
                        continue;
                    }
                    // Lookahead of τ's domain rule, child by child.
                    let mut branch = vec![(g1, la.clone())];
                    for (i, child) in children.iter().enumerate() {
                        let d = self.dt_child[&(q.0, ri, i)];
                        let mut next = Vec::new();
                        for (bg, bla) in branch {
                            next.extend(self.la.look(bg, bla, d, child)?);
                        }
                        branch = next;
                        if branch.is_empty() {
                            break;
                        }
                    }
                    for (bg, bla) in branch {
                        let inst = self.instantiate(&tau.output, fun, children);
                        results.extend(self.reduce(bg, bla, &inst)?);
                    }
                }
                Ok(results)
            }
            // Case 3: an output node — reduce children left to right,
            // threading constraints and taking the cartesian product of
            // alternatives.
            Ext::Node {
                ctor,
                fun,
                children,
            } => {
                type Partial<A> = (
                    <A as fast_smt::BoolAlg>::Pred,
                    Vec<BTreeSet<StateId>>,
                    Vec<Out<A>>,
                );
                let mut acc: Vec<Partial<A>> = vec![(gamma, la, Vec::new())];
                for child in children {
                    let mut next = Vec::new();
                    for (bg, bla, kids) in &acc {
                        for (cg, cla, cout) in self.reduce(bg.clone(), bla.clone(), child)? {
                            let mut ks = kids.clone();
                            ks.push(cout);
                            next.push((cg, cla, ks));
                        }
                    }
                    acc = next;
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc
                    .into_iter()
                    .map(|(g, l, kids)| {
                        (
                            g,
                            l,
                            Out::Node {
                                ctor: *ctor,
                                fun: fun.clone(),
                                children: kids,
                            },
                        )
                    })
                    .collect())
            }
        }
    }
}

/// Composes two STTRs: `T_{composed} ⊇ T_t ∘ T_s`, with equality when
/// `s` is single-valued or `t` is linear (Theorem 4). Note the
/// application order: `compose(s, t)` first runs `s`, then `t`, matching
/// the paper's `(compose s t)`.
///
/// The result carries its [`Exactness`] verdict; when neither Theorem 4
/// precondition holds the caller sees `Exactness::Overapproximate` with
/// the violating rules and must decide whether the over-approximation is
/// acceptable (it is for pre-image-style analyses, it is not for fused
/// evaluation). Use [`try_compose_exact`] to turn inexactness into an
/// error instead.
///
/// # Errors
///
/// Returns budget errors if pair states or composed rules exceed
/// [`MAX_PAIR_STATES`] / [`MAX_COMPOSED_RULES`], and propagates automata
/// errors from normalizing `t`'s domain automaton.
///
/// # Panics
///
/// Panics if the transducers have different tree types.
pub fn compose<A: TransAlg<Elem = Label>>(
    s: &Sttr<A>,
    t: &Sttr<A>,
) -> Result<Composed<A>, TransducerError> {
    compose_with(s, t, ComposeOptions::default())
}

/// Exact composition or nothing: composes `s` then `t` and returns the
/// fused transducer only when one of the Theorem 4 preconditions holds.
///
/// # Errors
///
/// Returns [`TransducerError::InexactComposition`] (carrying the
/// violating rules of both factors) when `s` is not single-valued and
/// `t` is not linear — checked *before* building the composition, so the
/// failure is cheap. Otherwise propagates the same budget errors as
/// [`compose`].
///
/// # Panics
///
/// Panics if the transducers have different tree types.
pub fn try_compose_exact<A: TransAlg<Elem = Label>>(
    s: &Sttr<A>,
    t: &Sttr<A>,
) -> Result<Sttr<A>, TransducerError> {
    if let Exactness::Overapproximate {
        left_witness,
        right_witness,
    } = compose_exactness(s, t)
    {
        return Err(TransducerError::InexactComposition {
            left_witness,
            right_witness,
        });
    }
    Ok(compose(s, t)?.sttr)
}

/// [`compose`] with explicit [`ComposeOptions`].
///
/// # Errors
///
/// Same as [`compose`].
///
/// # Panics
///
/// Panics if the transducers have different tree types.
pub fn compose_with<A: TransAlg<Elem = Label>>(
    s: &Sttr<A>,
    t: &Sttr<A>,
    opts: ComposeOptions,
) -> Result<Composed<A>, TransducerError> {
    assert_eq!(s.ty(), t.ty(), "tree type mismatch");
    let exactness = compose_exactness(s, t);
    let _span = fast_obs::span!("compose.total");
    let alg = s.alg().clone();

    // Normalized domain automaton of t, rooted at every per-rule child
    // requirement (lookahead ∪ output states — Definition 6).
    let dom_t = t.domain();
    let n_t = t.state_count();
    let mut roots: Vec<BTreeSet<StateId>> = Vec::new();
    let mut root_index: HashMap<BTreeSet<StateId>, usize> = HashMap::new();
    let mut rule_child_root: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for q in t.states() {
        for (ri, rule) in t.rules(q).iter().enumerate() {
            for i in 0..rule.lookahead.len() {
                let mut set: BTreeSet<StateId> = rule.lookahead[i]
                    .iter()
                    .map(|la| StateId(la.0 + n_t))
                    .collect();
                let mut st = BTreeSet::new();
                rule.output.states_on_child(i, &mut st);
                set.extend(st);
                let idx = *root_index.entry(set.clone()).or_insert_with(|| {
                    roots.push(set);
                    roots.len() - 1
                });
                rule_child_root.insert((q.0, ri, i), idx);
            }
        }
    }
    let (dt_raw, root_ids) = normalize_rooted(&dom_t, roots)?;
    let dt = clean(&dt_raw);
    let dt_child: HashMap<(usize, usize, usize), StateId> = rule_child_root
        .into_iter()
        .map(|(k, idx)| (k, root_ids[idx]))
        .collect();

    let mut ctx = ComposeCtx {
        s,
        t,
        la: PreimageBuilder::new(s, &dt, opts),
        dt_child,
        names: Vec::new(),
        rules: Vec::new(),
        pair_ids: HashMap::new(),
        pair_queue: VecDeque::new(),
        total_rules: 0,
    };

    ctx.trans_pair(s.initial(), t.initial())?;
    while let Some((p, q)) = ctx.pair_queue.pop_front() {
        let me = ctx.pair_ids[&(p, q)];
        for s_rule in s.rules(p).to_vec() {
            let rank = s_rule.lookahead.len();
            let v = Ext::TApp(q, &s_rule.output);
            let triples = ctx.reduce(s_rule.guard.clone(), vec![BTreeSet::new(); rank], &v)?;
            for (g, l, out) in triples {
                ctx.total_rules += 1;
                if ctx.total_rules > MAX_COMPOSED_RULES {
                    return Err(TransducerError::Budget {
                        context: "composed rules",
                        limit: MAX_COMPOSED_RULES,
                    });
                }
                let lookahead = (0..rank)
                    .map(|i| {
                        s_rule.lookahead[i]
                            .iter()
                            .copied()
                            .chain(l[i].iter().copied())
                            .collect()
                    })
                    .collect();
                ctx.rules[me.0].push(TRule {
                    ctor: s_rule.ctor,
                    guard: g,
                    lookahead,
                    output: out,
                });
            }
        }
    }
    ctx.la.drain()?;

    let initial = ctx.pair_ids[&(s.initial(), t.initial())];
    let composed = Sttr::from_parts(
        s.ty().clone(),
        alg,
        ctx.names,
        ctx.rules,
        ctx.la.out,
        initial,
    );
    // Trivial lookahead accumulates one pair per composition layer; prune
    // it so deeply fused transducers run as fast as shallow ones (§5.3).
    Ok(Composed {
        sttr: composed.prune_lookahead(),
        exactness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sttr::fixtures::{filter_ev, ilist, ilist_alg, map_caesar};
    use crate::sttr::SttrBuilder;
    use fast_smt::{Atom, Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
    use fast_trees::{Tree, TreeGen, TreeType};
    use std::sync::Arc;

    /// Reference semantics: run `s` then `t` pointwise.
    fn sequential(s: &Sttr, t: &Sttr, input: &Tree) -> Vec<Tree> {
        let mut out = std::collections::BTreeSet::new();
        for mid in s.run(input).unwrap() {
            for fin in t.run(&mid).unwrap() {
                out.insert(fin);
            }
        }
        out.into_iter().collect()
    }

    #[test]
    fn compose_map_with_map() {
        let m = map_caesar();
        let c = compose(&m, &m).unwrap();
        assert_eq!(c.exactness, Exactness::LeftSingleValued);
        let c = c.sttr;
        let ty = m.ty().clone();
        let mut g = TreeGen::new(31).with_max_depth(8).with_int_range(-40, 40);
        for _ in 0..50 {
            let t = g.tree(&ty);
            assert_eq!(c.run(&t).unwrap(), sequential(&m, &m, &t));
        }
    }

    #[test]
    fn compose_map_with_filter_both_orders() {
        let m = map_caesar();
        let f = filter_ev();
        let mf = compose(&m, &f).unwrap().sttr;
        let fm = compose(&f, &m).unwrap().sttr;
        let ty = m.ty().clone();
        let mut g = TreeGen::new(37).with_max_depth(8).with_int_range(-40, 40);
        for _ in 0..50 {
            let t = g.tree(&ty);
            assert_eq!(
                mf.run(&t).unwrap(),
                sequential(&m, &f, &t),
                "m;f on {}",
                t.display(&ty)
            );
            assert_eq!(
                fm.run(&t).unwrap(),
                sequential(&f, &m, &t),
                "f;m on {}",
                t.display(&ty)
            );
        }
    }

    /// The paper's Example 4: deletion requires regular lookahead to keep
    /// the composed domain right.
    fn bbt() -> Arc<TreeType> {
        TreeType::new(
            "BBT",
            LabelSig::single("b", Sort::Bool),
            vec![("L", 0), ("N", 2)],
        )
    }

    fn example4() -> (Sttr, Sttr) {
        let ty = bbt();
        let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
        let l = ty.ctor_id("L").unwrap();
        let n = ty.ctor_id("N").unwrap();
        let b_true = Formula::atom(Atom::BoolTerm(Term::field(0)));

        // s1: identity, defined only on all-true trees.
        let mut b = SttrBuilder::new(ty.clone(), alg.clone());
        let s1q = b.state("s1");
        b.plain_rule(
            s1q,
            l,
            b_true.clone(),
            Out::node(l, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            s1q,
            n,
            b_true,
            Out::node(
                n,
                LabelFn::identity(1),
                vec![Out::Call(s1q, 0), Out::Call(s1q, 1)],
            ),
        );
        let s1 = b.build(s1q);

        // s2: always outputs L[true], deleting all subtrees.
        let mut b = SttrBuilder::new(ty, alg);
        let s2q = b.state("s2");
        let ltrue = Out::node(l, LabelFn::new(vec![Term::bool(true)]), vec![]);
        b.plain_rule(s2q, l, Formula::True, ltrue.clone());
        b.plain_rule(s2q, n, Formula::True, ltrue);
        let s2 = b.build(s2q);
        (s1, s2)
    }

    #[test]
    fn example4_deletion_keeps_domain() {
        let (s1, s2) = example4();
        assert!(s2.is_linear()); // right factor linear ⇒ exact composition
        let c = compose(&s1, &s2).unwrap();
        assert!(c.exactness.is_exact());
        let c = c.sttr;
        let ty = s1.ty().clone();
        let all_true = Tree::parse(&ty, "N[true](L[true], L[true])").unwrap();
        let has_false = Tree::parse(&ty, "N[true](L[true], L[false])").unwrap();
        // Composed: L[true] iff every node label is true. Crucially the
        // false-under-deleted-subtree case must produce NOTHING, which an
        // STT without lookahead cannot express (Example 4).
        assert_eq!(c.run(&all_true).unwrap().len(), 1);
        assert!(c.run(&has_false).unwrap().is_empty());
        let mut g = TreeGen::new(41).with_max_depth(5);
        for _ in 0..80 {
            let t = g.tree(&ty);
            assert_eq!(c.run(&t).unwrap(), sequential(&s1, &s2, &t));
        }
    }

    /// Example 9 shape: nondeterministic S + duplicating T composes to an
    /// over-approximation.
    fn example9() -> (Sttr, Sttr) {
        let ty = TreeType::new(
            "E9",
            LabelSig::single("i", Sort::Int),
            vec![("c", 0), ("g", 1), ("f", 2), ("A", 0), ("B", 0)],
        );
        let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
        let c = ty.ctor_id("c").unwrap();
        let g = ty.ctor_id("g").unwrap();
        let f = ty.ctor_id("f").unwrap();
        let a = ty.ctor_id("A").unwrap();
        let bb = ty.ctor_id("B").unwrap();
        let zero = LabelFn::new(vec![Term::int(0)]);

        // S: g(y) → g(p(y)); p(c) → A | B   (nondeterministic on leaves)
        let mut b = SttrBuilder::new(ty.clone(), alg.clone());
        let s0 = b.state("s0");
        let p = b.state("p");
        b.plain_rule(
            s0,
            g,
            Formula::True,
            Out::node(g, zero.clone(), vec![Out::Call(p, 0)]),
        );
        b.plain_rule(p, c, Formula::True, Out::node(a, zero.clone(), vec![]));
        b.plain_rule(p, c, Formula::True, Out::node(bb, zero.clone(), vec![]));
        let s = b.build(s0);

        // T: g(y) → f(q(y), q(y))  (duplication); q copies A and B.
        let mut b = SttrBuilder::new(ty, alg);
        let t0 = b.state("t0");
        let q = b.state("q");
        b.plain_rule(
            t0,
            g,
            Formula::True,
            Out::node(f, zero.clone(), vec![Out::Call(q, 0), Out::Call(q, 0)]),
        );
        b.plain_rule(q, a, Formula::True, Out::node(a, zero.clone(), vec![]));
        b.plain_rule(q, bb, Formula::True, Out::node(bb, zero, vec![]));
        let t = b.build(t0);
        (s, t)
    }

    #[test]
    fn example9_overapproximates() {
        let (s, t) = example9();
        assert!(!t.is_linear()); // duplication
        assert!(!s.is_deterministic().unwrap()); // nondeterminism
        let c = compose(&s, &t).unwrap();
        assert!(
            matches!(c.exactness, Exactness::Overapproximate { .. }),
            "verdict must flag the over-approximation: {}",
            c.exactness
        );
        match try_compose_exact(&s, &t) {
            Err(TransducerError::InexactComposition {
                left_witness,
                right_witness,
            }) => {
                // The semantic decision upgrades the witness from a rule
                // pair to a run-verified ambiguous input.
                assert!(left_witness.contains("ambiguous"), "{left_witness}");
                assert!(right_witness.contains("twice"), "{right_witness}");
            }
            other => panic!("expected InexactComposition, got {other:?}"),
        }
        let c = c.sttr;
        let ty = s.ty().clone();
        let input = Tree::parse(&ty, "g[0](c[0])").unwrap();
        let exact: Vec<Tree> = sequential(&s, &t, &input);
        let approx = c.run(&input).unwrap();
        // Exact: f(A,A), f(B,B). Approximation adds f(A,B), f(B,A).
        assert_eq!(exact.len(), 2);
        assert_eq!(approx.len(), 4, "Theorem 4: ⊇ but not =");
        for e in &exact {
            assert!(approx.contains(e), "composition must over-approximate");
        }
    }

    #[test]
    fn nondet_but_single_valued_left_composes_exactly() {
        // Left: two overlapping leaf rules with semantically equal
        // outputs (identity vs. x*1, overlapping at x = 0). Right:
        // duplicates child 0 — nonlinear. The determinism-only check
        // would over-approximate here; the semantic single-valuedness
        // decision proves the left factor single-valued, so the
        // composition is exact and agrees with sequential runs.
        let ty = TreeType::new(
            "IT",
            LabelSig::single("i", Sort::Int),
            vec![("leaf", 0), ("node", 2)],
        );
        let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
        let leaf = ty.ctor_id("leaf").unwrap();
        let node = ty.ctor_id("node").unwrap();

        let mut b = SttrBuilder::new(ty.clone(), alg.clone());
        let q = b.state("norm");
        b.plain_rule(
            q,
            leaf,
            Formula::cmp(fast_smt::CmpOp::Ge, Term::field(0), Term::int(0)),
            Out::node(leaf, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            leaf,
            Formula::cmp(fast_smt::CmpOp::Le, Term::field(0), Term::int(0)),
            Out::node(
                leaf,
                LabelFn::new(vec![Term::field(0).mul(Term::int(1))]),
                vec![],
            ),
        );
        b.plain_rule(
            q,
            node,
            Formula::True,
            Out::node(
                node,
                LabelFn::identity(1),
                vec![Out::Call(q, 0), Out::Call(q, 1)],
            ),
        );
        let s = b.build(q);
        assert!(!s.is_deterministic().unwrap());
        assert!(s.is_single_valued());

        let mut b = SttrBuilder::new(ty.clone(), alg);
        let d = b.state("dup");
        b.plain_rule(
            d,
            leaf,
            Formula::True,
            Out::node(leaf, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            d,
            node,
            Formula::True,
            Out::node(
                node,
                LabelFn::identity(1),
                vec![Out::Call(d, 0), Out::Call(d, 0)],
            ),
        );
        let t = b.build(d);
        assert!(!t.is_linear());

        assert_eq!(
            compose_exactness(&s, &t),
            Exactness::LeftSingleValued,
            "nondet-but-single-valued left must now compose exactly"
        );
        let c = compose(&s, &t).unwrap();
        assert!(c.exactness.is_exact());
        let mut g = TreeGen::new(53).with_max_depth(5).with_int_range(-9, 9);
        for _ in 0..40 {
            let input = g.tree(&ty);
            assert_eq!(c.sttr.run(&input).unwrap(), sequential(&s, &t, &input));
        }
    }

    #[test]
    fn preimage_of_filter() {
        // pre-image of "non-empty list" under filter_ev = lists containing
        // at least one even element.
        use fast_automata::StaBuilder;
        let f = filter_ev();
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg);
        let ne = b.state("non_empty");
        b.rule(
            ne,
            cons,
            Formula::True,
            vec![std::collections::BTreeSet::new()],
        );
        let non_empty = b.build(ne);

        let pre = preimage(&f, &non_empty).unwrap();
        let has_even = |t: &Tree| {
            t.iter()
                .any(|n| n.ctor() == cons && n.label().get(0).as_int().unwrap().rem_euclid(2) == 0)
        };
        let mut g = TreeGen::new(43).with_max_depth(7).with_int_range(-9, 9);
        for _ in 0..100 {
            let t = g.tree(&ty);
            assert_eq!(pre.accepts(&t), has_even(&t), "on {}", t.display(&ty));
        }
    }

    #[test]
    fn compose_chain_stays_flat() {
        // Composing map_caesar with itself n times still runs in one pass
        // and agrees with n sequential runs.
        let m = map_caesar();
        let mut fused = m.clone();
        for _ in 0..4 {
            fused = compose(&fused, &m).unwrap().sttr;
        }
        let ty = m.ty().clone();
        let t = Tree::parse(&ty, "cons[0](cons[13](nil[0]))").unwrap();
        let mut expect = t.clone();
        for _ in 0..5 {
            expect = m.run(&expect).unwrap().pop().unwrap();
        }
        assert_eq!(fused.run(&t).unwrap(), vec![expect]);
        // Single state pair chain; rules stay small.
        assert!(fused.rule_count() <= 8, "rules: {}", fused.rule_count());
    }
}
