//! Derived transducer operations (§3.5): input/output restriction and
//! type-checking. All are special applications of composition with the
//! restricted identity transducer, which is single-valued *and* linear, so
//! they are always exact (Theorem 4).

use crate::compose::{preimage, try_compose_exact};
use crate::error::TransducerError;
use crate::sttr::{identity_restricted, Sttr};
use fast_automata::{complement, intersect, is_empty, Sta};
use fast_smt::{Label, TransAlg};

/// `restrict t l`: behaves like `t` but is only defined on inputs in the
/// language of `l`'s designated state.
///
/// # Errors
///
/// Propagates composition/normalization budget errors.
///
/// # Panics
///
/// Panics on tree-type mismatch.
pub fn restrict<A: TransAlg<Elem = Label>>(
    t: &Sttr<A>,
    l: &Sta<A>,
) -> Result<Sttr<A>, TransducerError> {
    let id = identity_restricted(l)?;
    // The restricted identity is single-valued, so this is always exact.
    try_compose_exact(&id, t)
}

/// `restrict-out t l`: behaves like `t` but only produces outputs in the
/// language of `l`'s designated state (`compose t (restrict I l)`, as in
/// §3.5).
///
/// # Errors
///
/// Propagates composition/normalization budget errors.
///
/// # Panics
///
/// Panics on tree-type mismatch.
pub fn restrict_out<A: TransAlg<Elem = Label>>(
    t: &Sttr<A>,
    l: &Sta<A>,
) -> Result<Sttr<A>, TransducerError> {
    let id = identity_restricted(l)?;
    // The restricted identity is linear, so this is always exact.
    try_compose_exact(t, &id)
}

/// Is the transduction empty — i.e. does `t` produce no output on any
/// input? Decided via emptiness of the domain automaton restricted to
/// rules that can actually produce output; equivalently, emptiness of the
/// pre-image of the universal language.
///
/// # Errors
///
/// Propagates budget errors.
pub fn is_empty_transducer<A: TransAlg<Elem = Label>>(
    t: &Sttr<A>,
) -> Result<bool, TransducerError> {
    is_empty(&t.domain()).map_err(TransducerError::from)
}

/// `type-check l1 t l2`: true iff for every input in `L(l1)`, `t` only
/// produces outputs in `L(l2)` — checked as emptiness of
/// `L(l1) ∩ pre-image(t, ¬L(l2))`.
///
/// # Errors
///
/// Propagates budget errors.
///
/// # Panics
///
/// Panics on tree-type mismatch.
pub fn type_check<A: TransAlg<Elem = Label>>(
    l1: &Sta<A>,
    t: &Sttr<A>,
    l2: &Sta<A>,
) -> Result<bool, TransducerError> {
    let bad_outputs = complement(l2).map_err(TransducerError::from)?;
    let bad_inputs = preimage(t, &bad_outputs)?;
    let offending = intersect(l1, &bad_inputs);
    is_empty(&offending).map_err(TransducerError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sttr::fixtures::{filter_ev, ilist, ilist_alg, map_caesar};
    use fast_automata::StaBuilder;
    use fast_smt::{Formula, Term};
    use fast_trees::{Tree, TreeGen};

    /// Language of lists with all elements in [lo, hi].
    fn range_lang(lo: i64, hi: i64) -> Sta {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let s = b.state("range");
        b.leaf_rule(s, nil, Formula::True);
        b.simple_rule(
            s,
            cons,
            Formula::cmp(fast_smt::CmpOp::Ge, Term::field(0), Term::int(lo)).and(Formula::cmp(
                fast_smt::CmpOp::Le,
                Term::field(0),
                Term::int(hi),
            )),
            vec![Some(s)],
        );
        b.build(s)
    }

    #[test]
    fn restrict_cuts_domain() {
        let m = map_caesar();
        let l = range_lang(0, 9);
        let r = restrict(&m, &l).unwrap();
        let ty = m.ty().clone();
        let inside = Tree::parse(&ty, "cons[3](nil[0])").unwrap();
        let outside = Tree::parse(&ty, "cons[30](nil[0])").unwrap();
        assert_eq!(r.run(&inside).unwrap(), m.run(&inside).unwrap());
        assert!(r.run(&outside).unwrap().is_empty());
        assert!(!m.run(&outside).unwrap().is_empty());
    }

    #[test]
    fn restrict_out_cuts_by_output() {
        // map_caesar outputs are always in [0, 25]; restricting outputs to
        // [0, 9] keeps exactly inputs whose mapped values land there.
        let m = map_caesar();
        let l = range_lang(0, 9);
        let r = restrict_out(&m, &l).unwrap();
        let ty = m.ty().clone();
        let good = Tree::parse(&ty, "cons[30](nil[0])").unwrap(); // 30+5 % 26 = 9
        let bad = Tree::parse(&ty, "cons[10](nil[0])").unwrap(); // 15
        assert_eq!(r.run(&good).unwrap(), m.run(&good).unwrap());
        assert!(r.run(&bad).unwrap().is_empty());
    }

    #[test]
    fn type_check_map_caesar_range() {
        // On any input, map_caesar produces values in [0, 25].
        let m = map_caesar();
        let all = range_lang(i64::MIN / 2, i64::MAX / 2);
        let out_range = range_lang(0, 25);
        let too_tight = range_lang(0, 10);
        assert!(type_check(&all, &m, &out_range).unwrap());
        assert!(!type_check(&all, &m, &too_tight).unwrap());
    }

    #[test]
    fn type_check_filter_preserves_range() {
        let f = filter_ev();
        let l = range_lang(0, 9);
        // Outputs of filter on [0,9] lists stay in [0,9]... except the nil
        // relabeling to 0, which is still in range.
        assert!(type_check(&l, &f, &l).unwrap());
    }

    #[test]
    fn transducer_emptiness() {
        let m = map_caesar();
        assert!(!is_empty_transducer(&m).unwrap());
        // Restrict to an empty language: transduction becomes empty.
        let ty = m.ty().clone();
        let alg = m.alg().clone();
        let nil = ty.ctor_id("nil").unwrap();
        let mut b = StaBuilder::new(ty, alg);
        let s = b.state("empty");
        b.leaf_rule(s, nil, Formula::False);
        let empty = b.build(s);
        let r = restrict(&m, &empty).unwrap();
        assert!(is_empty_transducer(&r).unwrap());
    }

    #[test]
    fn restricted_runs_agree_with_filtering() {
        // Property-style check: restrict(t, l).run == run if input ∈ L else ∅.
        let m = map_caesar();
        let l = range_lang(-3, 3);
        let r = restrict(&m, &l).unwrap();
        let ty = m.ty().clone();
        let mut g = TreeGen::new(23).with_max_depth(6).with_int_range(-6, 6);
        for _ in 0..60 {
            let t = g.tree(&ty);
            let expected = if l.accepts(&t) {
                m.run(&t).unwrap()
            } else {
                Vec::new()
            };
            assert_eq!(r.run(&t).unwrap(), expected);
        }
    }
}
