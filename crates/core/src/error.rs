//! Errors for the transducer algorithms.

use fast_automata::AutomataError;
use std::fmt;

/// Errors raised by transducer constructions and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransducerError {
    /// An underlying automaton construction hit its state budget.
    Automata(AutomataError),
    /// A construction or run exceeded its own budget.
    Budget {
        /// Which algorithm hit the limit.
        context: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// A run exceeded its wall-clock deadline (used by the batch runtime's
    /// per-item timeouts; the single-tree [`crate::Sttr::run`] never
    /// raises this).
    Timeout {
        /// The configured per-item budget, in milliseconds.
        limit_ms: u64,
    },
    /// The caller cancelled the run before it finished (the batch
    /// runtime's cooperative cancellation token — a streaming consumer
    /// hung up, or a server connection went away).
    Cancelled,
    /// The runtime lost this item to an internal fault (a worker thread
    /// died mid-item). The fault degrades the one item, not the process.
    Internal {
        /// Which runtime component failed.
        context: &'static str,
    },
    /// [`crate::try_compose_exact`] was asked for an exact composition
    /// but neither exactness precondition of Theorem 4 holds: the left
    /// factor is not single-valued *and* the right factor is not linear.
    InexactComposition {
        /// Witness of non-single-valuedness on the left factor: a pair
        /// of overlapping rules, rendered as `state#i/#j on ctor`.
        left_witness: String,
        /// Witness of non-linearity on the right factor: a rule whose
        /// output uses some input child more than once.
        right_witness: String,
    },
}

impl fmt::Display for TransducerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransducerError::Automata(e) => write!(f, "{e}"),
            TransducerError::Budget { context, limit } => {
                write!(f, "{context} exceeded its budget of {limit}")
            }
            TransducerError::Timeout { limit_ms } => {
                write!(f, "run exceeded its deadline of {limit_ms} ms")
            }
            TransducerError::Cancelled => write!(f, "run cancelled by the caller"),
            TransducerError::Internal { context } => {
                write!(f, "internal runtime fault in {context}")
            }
            TransducerError::InexactComposition {
                left_witness,
                right_witness,
            } => {
                write!(
                    f,
                    "composition is not exact: left factor is not single-valued \
                     ({left_witness}) and right factor is not linear ({right_witness})"
                )
            }
        }
    }
}

impl std::error::Error for TransducerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransducerError::Automata(e) => Some(e),
            TransducerError::Budget { .. }
            | TransducerError::Timeout { .. }
            | TransducerError::Cancelled
            | TransducerError::Internal { .. }
            | TransducerError::InexactComposition { .. } => None,
        }
    }
}

impl From<AutomataError> for TransducerError {
    fn from(e: AutomataError) -> Self {
        TransducerError::Automata(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = TransducerError::Budget {
            context: "compose",
            limit: 10,
        };
        assert_eq!(e.to_string(), "compose exceeded its budget of 10");
        assert!(e.source().is_none());
        let w: TransducerError = AutomataError::StateLimit {
            context: "normalize",
            limit: 5,
        }
        .into();
        assert!(w.source().is_some());
    }
}
