//! Equivalence *falsification* for STTRs.
//!
//! Deciding equivalence of STTRs is an open problem (§7 of the paper —
//! even single-valuedness of STTRs is open). This module provides the
//! practical complement: an exact check on *domains* (which is decidable,
//! via the domain automata) plus bounded-exhaustive differential testing
//! on inputs whose labels are mined from the transducers' own guards. A
//! returned witness is always a genuine inequivalence; `None` means "no
//! difference found within the budget", not a proof of equivalence.

use crate::error::TransducerError;
use crate::sttr::Sttr;
use fast_automata::{difference, witness};
use fast_smt::{Label, TransAlg};
use fast_trees::Tree;

/// Budget for [`find_inequivalence`].
#[derive(Debug, Clone, Copy)]
pub struct EquivConfig {
    /// Maximum depth of generated input trees.
    pub max_depth: usize,
    /// Maximum number of generated inputs to test.
    pub max_cases: usize,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            max_depth: 4,
            max_cases: 4_000,
        }
    }
}

/// Searches for an input on which the two transductions differ
/// (as sets of outputs).
///
/// Phase 1 compares the domains exactly (decidable): a tree in one domain
/// but not the other is an immediate witness. Phase 2 enumerates trees
/// bounded by `cfg`, with node labels drawn from models of both
/// transducers' rule guards (so guard boundaries are exercised), and
/// compares output sets.
///
/// # Errors
///
/// Propagates automata budget errors from the domain comparison and run
/// budget errors from test execution.
///
/// # Panics
///
/// Panics if the transducers have different tree types.
pub fn find_inequivalence<A: TransAlg<Elem = Label>>(
    a: &Sttr<A>,
    b: &Sttr<A>,
    cfg: EquivConfig,
) -> Result<Option<Tree>, TransducerError> {
    assert_eq!(a.ty(), b.ty(), "tree type mismatch");
    // Phase 1: exact domain comparison.
    let (da, db) = (a.domain(), b.domain());
    for (x, y) in [(&da, &db), (&db, &da)] {
        let diff = difference(x, y).map_err(TransducerError::from)?;
        if let Some(w) = witness(&diff).map_err(TransducerError::from)? {
            return Ok(Some(w));
        }
    }
    // Phase 2: bounded-exhaustive differential testing over mined labels.
    let labels = mined_labels(a, b);
    let mut count = 0usize;
    let mut stack: Vec<Tree> = Vec::new();
    enumerate(a.ty(), &labels, cfg.max_depth, &mut |t| {
        if count >= cfg.max_cases {
            return false;
        }
        count += 1;
        stack.push(t.clone());
        true
    });
    for t in stack {
        if a.run(&t)? != b.run(&t)? {
            return Ok(Some(t));
        }
    }
    Ok(None)
}

/// Collects candidate node labels: a model of every rule guard of both
/// transducers and of every lookahead-automaton rule guard, plus the
/// all-default label. Models sit inside their guards; to also probe just
/// *outside*, callers can extend the pool before testing.
fn mined_labels<A: TransAlg<Elem = Label>>(a: &Sttr<A>, b: &Sttr<A>) -> Vec<Label> {
    let mut labels: Vec<Label> = vec![Label::default_of(alg_sig(a))];
    extend_guard_labels(a, &mut labels);
    extend_guard_labels(b, &mut labels);
    labels
}

/// Extends `labels` with a model of every rule guard of `s` (and its
/// negation) and of every lookahead-automaton rule guard, deduplicated.
/// Shared by equivalence falsification and the single-valuedness witness
/// search ([`crate::sv`]).
pub(crate) fn extend_guard_labels<A: TransAlg<Elem = Label>>(s: &Sttr<A>, labels: &mut Vec<Label>) {
    let alg = s.alg();
    let mut push = |l: Option<Label>| {
        if let Some(l) = l {
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
    };
    for q in s.states() {
        for r in s.rules(q) {
            push(alg.model(&r.guard));
            push(alg.model(&alg.not(&r.guard)));
        }
    }
    let la = s.lookahead_sta();
    for q in la.states() {
        for r in la.rules(q) {
            push(alg.model(&r.guard));
        }
    }
}

fn alg_sig<A: TransAlg<Elem = Label>>(s: &Sttr<A>) -> &fast_smt::LabelSig {
    s.ty().sig()
}

/// Depth-bounded exhaustive tree enumeration over a label pool; the
/// visitor returns `false` to stop early.
pub(crate) fn enumerate(
    ty: &fast_trees::TreeType,
    labels: &[Label],
    depth: usize,
    visit: &mut dyn FnMut(&Tree) -> bool,
) {
    // Build all trees of depth exactly 1, then grow level by level.
    let mut current: Vec<Tree> = Vec::new();
    for ctor in ty.ctor_ids() {
        if ty.rank(ctor) == 0 {
            for l in labels {
                current.push(Tree::leaf(ctor, l.clone()));
            }
        }
    }
    for t in &current {
        if !visit(t) {
            return;
        }
    }
    let mut all = current.clone();
    for _ in 1..depth {
        let mut next = Vec::new();
        for ctor in ty.ctor_ids() {
            let rank = ty.rank(ctor);
            if rank == 0 {
                continue;
            }
            // Children tuples over everything built so far, capped by the
            // visitor's budget.
            let mut tuple_idx = vec![0usize; rank];
            'tuples: loop {
                for l in labels {
                    let kids: Vec<Tree> = tuple_idx.iter().map(|&i| all[i].clone()).collect();
                    let t = Tree::new(ctor, l.clone(), kids);
                    if !visit(&t) {
                        return;
                    }
                    next.push(t);
                }
                let mut i = rank;
                loop {
                    if i == 0 {
                        break 'tuples;
                    }
                    i -= 1;
                    tuple_idx[i] += 1;
                    if tuple_idx[i] < all.len() {
                        break;
                    }
                    tuple_idx[i] = 0;
                }
            }
        }
        all.extend(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sttr::fixtures::{ilist, ilist_alg, map_caesar};
    use crate::sttr::SttrBuilder;
    use crate::Out;
    use fast_smt::{CmpOp, Formula, LabelFn, Term};

    fn map_plus(k: i64) -> Sttr {
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("map");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(1), vec![]),
        );
        b.plain_rule(
            q,
            cons,
            Formula::True,
            Out::node(
                cons,
                LabelFn::new(vec![Term::field(0).add(Term::int(k))]),
                vec![Out::Call(q, 0)],
            ),
        );
        b.build(q)
    }

    #[test]
    fn identical_transducers_no_witness() {
        let a = map_caesar();
        assert_eq!(
            find_inequivalence(&a, &a, EquivConfig::default()).unwrap(),
            None
        );
    }

    #[test]
    fn different_relabelings_found() {
        let a = map_plus(5);
        let b = map_plus(6);
        let w = find_inequivalence(&a, &b, EquivConfig::default())
            .unwrap()
            .expect("+5 and +6 differ");
        assert_ne!(a.run(&w).unwrap(), b.run(&w).unwrap());
    }

    #[test]
    fn domain_difference_found_exactly() {
        // Same behavior, different domain: restrict one to even heads.
        let a = map_plus(1);
        let ty = a.ty().clone();
        let alg = a.alg().clone();
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mut lb = fast_automata::StaBuilder::new(ty, alg);
        let s = lb.state("even_head");
        lb.leaf_rule(s, nil, Formula::True);
        lb.simple_rule(
            s,
            cons,
            Formula::eq(Term::field(0).modulo(2), Term::int(0)),
            vec![None],
        );
        let even_head = lb.build(s);
        let b = crate::ops::restrict(&a, &even_head).unwrap();
        let w = find_inequivalence(&a, &b, EquivConfig::default())
            .unwrap()
            .expect("domains differ");
        // The witness is in exactly one domain.
        assert_ne!(a.run(&w).unwrap().is_empty(), b.run(&w).unwrap().is_empty());
    }

    #[test]
    fn guard_boundary_difference_found() {
        // Differ only on inputs where i > 100 — mined guard models make
        // the enumeration probe that region.
        let ty = ilist();
        let alg = ilist_alg(&ty);
        let nil = ty.ctor_id("nil").unwrap();
        let cons = ty.ctor_id("cons").unwrap();
        let mk = |flip: bool| {
            let mut b = SttrBuilder::new(ty.clone(), alg.clone());
            let q = b.state("m");
            b.plain_rule(
                q,
                nil,
                Formula::True,
                Out::node(nil, LabelFn::identity(1), vec![]),
            );
            let big = Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(100));
            let out_big = if flip { Term::int(0) } else { Term::field(0) };
            b.plain_rule(
                q,
                cons,
                big.clone(),
                Out::node(cons, LabelFn::new(vec![out_big]), vec![Out::Call(q, 0)]),
            );
            b.plain_rule(
                q,
                cons,
                big.not(),
                Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
            );
            b.build(q)
        };
        let (a, b) = (mk(false), mk(true));
        let w = find_inequivalence(&a, &b, EquivConfig::default())
            .unwrap()
            .expect("they differ above 100");
        assert_ne!(a.run(&w).unwrap(), b.run(&w).unwrap());
    }
}
