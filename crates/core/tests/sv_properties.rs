//! Differential properties for the semantic single-valuedness decision
//! ([`Sttr::single_valuedness`]):
//!
//! * a `Single` verdict is *sound* — on random inputs the transducer
//!   never produces two distinct outputs;
//! * an `Ambiguous` verdict is *honest* — its witness really does drive
//!   the transducer to at least the claimed number of distinct outputs.
//!
//! The generator family is the interesting one for this decision:
//! cons-list transducers whose leaf/cons rules carry overlapping sign
//! guards (`i >= 0` / `i <= 0` / `i < 0` / `true`) and outputs that are
//! sometimes syntactically different but semantically equal (`i` vs
//! `i * 1`) and sometimes genuinely different (`i + 1`, constants) —
//! exactly the boundary between nondeterministic-but-single-valued and
//! truly ambiguous.

use fast_core::{Out, Sttr, SttrBuilder, SvBudget, SvVerdict};
use fast_smt::{CmpOp, Formula, Label, LabelAlg, LabelFn, LabelSig, Sort, Term};
use fast_trees::{Tree, TreeType};
use proptest::prelude::*;
use std::sync::Arc;

fn ilist() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "IList",
        LabelSig::single("i", Sort::Int),
        vec![("nil", 0), ("cons", 1)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

/// Sign guards that overlap pairwise in controlled ways.
fn guard() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::True),
        Just(Formula::cmp(CmpOp::Ge, Term::field(0), Term::int(0))),
        Just(Formula::cmp(CmpOp::Le, Term::field(0), Term::int(0))),
        Just(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(0))),
    ]
}

/// Output label functions: two spellings of the identity plus genuinely
/// different functions.
fn out_fun() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(Term::field(0)),
        Just(Term::field(0).mul(Term::int(1))),
        Just(Term::field(0).add(Term::int(1))),
        (-3i64..3).prop_map(Term::int),
    ]
}

/// A one-state cons-list STTR with 1–2 rules per constructor drawn from
/// the overlapping guard/output family above.
fn sv_sttr() -> impl Strategy<Value = Sttr> {
    let rules = || proptest::collection::vec((guard(), out_fun()), 1..3usize);
    (rules(), rules()).prop_map(|(leaf_rules, cons_rules)| {
        let (ty, alg) = ilist();
        let (nil, cons) = (ty.ctor_id("nil").unwrap(), ty.ctor_id("cons").unwrap());
        let mut b = SttrBuilder::new(ty, alg);
        let q = b.state("q");
        for (g, f) in leaf_rules {
            b.plain_rule(q, nil, g, Out::node(nil, LabelFn::new(vec![f]), vec![]));
        }
        for (g, f) in cons_rules {
            b.plain_rule(
                q,
                cons,
                g,
                Out::node(cons, LabelFn::new(vec![f]), vec![Out::Call(q, 0)]),
            );
        }
        b.build(q)
    })
}

fn list(ty: &Arc<TreeType>, items: &[i64]) -> Tree {
    let (nil, cons) = (ty.ctor_id("nil").unwrap(), ty.ctor_id("cons").unwrap());
    let mut t = Tree::leaf(nil, Label::single(*items.last().unwrap_or(&0)));
    for &v in items.iter().rev().skip(1) {
        t = Tree::new(cons, Label::single(v), vec![t]);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Single` ⇒ at most one output on every tested input;
    /// `Ambiguous` ⇒ the witness reproduces ≥ 2 distinct outputs.
    #[test]
    fn verdicts_agree_with_the_run_semantics(
        sttr in sv_sttr(),
        lists in proptest::collection::vec(
            proptest::collection::vec(-2i64..=2, 1..4), 1..6),
    ) {
        let (ty, _) = ilist();
        match sttr.single_valuedness(SvBudget::default()) {
            SvVerdict::Single(_) => {
                for items in &lists {
                    let outs = sttr.run(&list(&ty, items)).unwrap();
                    prop_assert!(
                        outs.len() <= 1,
                        "proven single-valued, but {:?} produced {} outputs",
                        items, outs.len(),
                    );
                }
            }
            SvVerdict::Ambiguous { witness, outputs } => {
                let outs = sttr.run(&witness).unwrap();
                prop_assert!(
                    outs.len() >= 2,
                    "claimed ambiguous with witness {}, but it produced {} output(s)",
                    witness.display(&ty), outs.len(),
                );
                prop_assert!(outputs >= 2);
            }
            SvVerdict::Unknown { .. } => {
                // No claim to check — but budget-default analysis of this
                // tiny family should essentially never punt; accept it.
            }
        }
    }
}
