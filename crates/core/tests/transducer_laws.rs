//! Algebraic laws of the transducer operations, checked behaviorally on
//! enumerated inputs and structurally where exact procedures exist.

use fast_automata::{equivalent, Sta, StaBuilder, StateId};
use fast_core::{
    compose, identity, identity_restricted, preimage, restrict, restrict_out, Out, Sttr,
    SttrBuilder,
};
use fast_smt::{CmpOp, Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
use fast_trees::{Tree, TreeGen, TreeType};
use std::sync::Arc;

fn bt() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

/// Deterministic relabeler: leaves f(x), inner nodes g(x), recursing on
/// both children; guard-split variants exercise lookahead-free branching.
fn relabel(f: Term, g: Term) -> Sttr {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("relabel");
    b.plain_rule(
        q,
        l,
        Formula::True,
        Out::node(l, LabelFn::new(vec![f]), vec![]),
    );
    b.plain_rule(
        q,
        n,
        Formula::True,
        Out::node(
            n,
            LabelFn::new(vec![g]),
            vec![Out::Call(q, 0), Out::Call(q, 1)],
        ),
    );
    b.build(q)
}

fn samples(seed: u64) -> Vec<Tree> {
    let (ty, _) = bt();
    let mut g = TreeGen::new(seed).with_max_depth(5).with_int_range(-8, 8);
    (0..60).map(|_| g.tree(&ty)).collect()
}

fn behaviorally_equal(a: &Sttr, b: &Sttr, seed: u64) {
    for t in samples(seed) {
        assert_eq!(a.run(&t).unwrap(), b.run(&t).unwrap(), "differ on {t:?}");
    }
}

#[test]
fn identity_is_neutral() {
    let (ty, alg) = bt();
    let id = identity(&ty, &alg);
    let f = relabel(Term::field(0).add(Term::int(3)), Term::field(0).neg());
    behaviorally_equal(&compose(&id, &f).unwrap().sttr, &f, 1);
    behaviorally_equal(&compose(&f, &id).unwrap().sttr, &f, 2);
}

#[test]
fn composition_is_associative_behaviorally() {
    let f = relabel(Term::field(0).add(Term::int(1)), Term::field(0));
    let g = relabel(
        Term::field(0).mul(Term::int(2)),
        Term::field(0).add(Term::int(5)),
    );
    let h = relabel(Term::field(0).modulo(7), Term::field(0).sub(Term::int(2)));
    let left = compose(&compose(&f, &g).unwrap().sttr, &h).unwrap().sttr;
    let right = compose(&f, &compose(&g, &h).unwrap().sttr).unwrap().sttr;
    behaviorally_equal(&left, &right, 3);
}

#[test]
fn restrict_twice_is_intersection() {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mk_lang = |f: Formula| {
        let mut b = StaBuilder::new(ty.clone(), alg.clone());
        let s = b.state("s");
        b.leaf_rule(s, l, f);
        b.simple_rule(s, n, Formula::True, vec![Some(s), Some(s)]);
        b.build(s)
    };
    let a = mk_lang(Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)));
    let b_ = mk_lang(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(5)));
    let f = relabel(Term::field(0), Term::field(0));
    let both = restrict(&restrict(&f, &a).unwrap(), &b_).unwrap();
    let meet = restrict(&f, &fast_automata::intersect(&a, &b_)).unwrap();
    behaviorally_equal(&both, &meet, 4);
}

#[test]
fn preimage_of_domain_is_domain() {
    // pre-image(t, ⊤) = domain(t).
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let s = b.state("all");
    b.leaf_rule(s, l, Formula::True);
    b.simple_rule(s, n, Formula::True, vec![Some(s), Some(s)]);
    let top = b.build(s);

    // A partial transducer: defined only when every leaf is even.
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let q = b.state("evens_only");
    b.plain_rule(
        q,
        l,
        Formula::eq(Term::field(0).modulo(2), Term::int(0)),
        Out::node(l, LabelFn::identity(1), vec![]),
    );
    b.plain_rule(
        q,
        n,
        Formula::True,
        Out::node(
            n,
            LabelFn::identity(1),
            vec![Out::Call(q, 0), Out::Call(q, 1)],
        ),
    );
    let f = b.build(q);
    let pre_top = preimage(&f, &top).unwrap();
    assert!(equivalent(&pre_top, &f.domain()).unwrap());
}

#[test]
fn restrict_out_then_domain_is_preimage() {
    // domain(restrict-out(t, l)) = pre-image(t, l) for deterministic t.
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let s = b.state("small");
    b.leaf_rule(s, l, Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(3)));
    b.simple_rule(s, n, Formula::True, vec![Some(s), Some(s)]);
    let small = b.build(s);

    let f = relabel(Term::field(0).add(Term::int(1)), Term::field(0));
    let via_restrict = restrict_out(&f, &small).unwrap().domain();
    let via_preimage = preimage(&f, &small).unwrap();
    assert!(equivalent(&via_restrict, &via_preimage).unwrap());
}

#[test]
fn identity_restricted_is_identity_on_language() {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let s = b.state("odds");
    b.leaf_rule(s, l, Formula::eq(Term::field(0).modulo(2), Term::int(1)));
    b.simple_rule(s, n, Formula::True, vec![Some(s), Some(s)]);
    let odds = b.build(s);
    let idr = identity_restricted(&odds).unwrap();
    for t in samples(5) {
        let out = idr.run(&t).unwrap();
        if odds.accepts(&t) {
            assert_eq!(out, vec![t]);
        } else {
            assert!(out.is_empty());
        }
    }
    // Its domain is exactly the language.
    assert!(equivalent(&idr.domain(), &odds).unwrap());
    // And it is linear + deterministic, as the §3.5 constructions assume.
    assert!(idr.is_linear());
    assert!(idr.is_deterministic().unwrap());
}

#[test]
fn prune_lookahead_preserves_behavior() {
    let f = relabel(Term::field(0).add(Term::int(1)), Term::field(0));
    let g = relabel(Term::field(0).mul(Term::int(3)), Term::field(0));
    let fused = compose(&f, &g).unwrap().sttr;
    let repruned = fused.prune_lookahead();
    behaviorally_equal(&fused, &repruned, 6);
    assert!(repruned.lookahead_sta().state_count() <= fused.lookahead_sta().state_count());
}

#[test]
fn composition_preserves_determinism_observationally() {
    // Deterministic ∘ deterministic yields at most one output per input.
    let f = relabel(Term::field(0).add(Term::int(2)), Term::field(0));
    let g = relabel(Term::field(0).modulo(5), Term::field(0).add(Term::int(1)));
    let c = compose(&f, &g).unwrap().sttr;
    for t in samples(7) {
        assert!(c.run(&t).unwrap().len() <= 1);
    }
}

/// The exact rule depicted in Fig. 5 of the paper: a linear rank-3 rule
/// `q̃(g[x](y1,y2,y3)) --x<4--> f[x+1](f[x−2](p̃(y1), q̃(y2)), p̃(y3))`.
#[test]
fn figure5_rule() {
    let ty = TreeType::new(
        "F5",
        LabelSig::single("x", Sort::Int),
        vec![("c", 0), ("f", 2), ("g", 3)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let c = ty.ctor_id("c").unwrap();
    let f = ty.ctor_id("f").unwrap();
    let g = ty.ctor_id("g").unwrap();
    let mut b = SttrBuilder::new(ty.clone(), alg);
    let q = b.state("q");
    let p = b.state("p");
    b.plain_rule(
        q,
        g,
        Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(4)),
        Out::node(
            f,
            LabelFn::new(vec![Term::field(0).add(Term::int(1))]),
            vec![
                Out::node(
                    f,
                    LabelFn::new(vec![Term::field(0).sub(Term::int(2))]),
                    vec![Out::Call(p, 0), Out::Call(q, 1)],
                ),
                Out::Call(p, 2),
            ],
        ),
    );
    // Base cases so the machines are total on leaves.
    for s in [q, p] {
        b.plain_rule(
            s,
            c,
            Formula::True,
            Out::node(c, LabelFn::identity(1), vec![]),
        );
    }
    let sttr = b.build(q);
    // The rule is linear (each yᵢ used exactly once) — the paper's point
    // that label duplication in outputs (x used twice) does NOT break
    // linearity, which is about subtree variables.
    assert!(sttr.is_linear());

    let input = Tree::parse(&ty, "g[3](c[10], g[0](c[1], c[2], c[3]), c[30])").unwrap();
    let out = sttr.run(&input).unwrap();
    assert_eq!(out.len(), 1);
    // Root: f[3+1]; inner: f[3−2](p(y1)=c[10], q(y2)=f[1](f[-2](c,c),c)); then p(y3)=c[30].
    assert_eq!(
        out[0].display(&ty).to_string(),
        "f[4](f[1](c[10], f[1](f[-2](c[1], c[2]), c[3])), c[30])"
    );
    // Domain: the guard cuts off x ≥ 4 at the root.
    let big = Tree::parse(&ty, "g[4](c[0], c[0], c[0])").unwrap();
    assert!(sttr.run(&big).unwrap().is_empty());

    // The domain-automaton rule of Fig. 5's caption:
    // (q, g, x<4, ({p}, {q}, {p})).
    let d = sttr.domain();
    let rule = d
        .rules(fast_automata::StateId(q.0))
        .iter()
        .find(|r| r.ctor == g)
        .unwrap();
    let req: Vec<Vec<usize>> = rule
        .lookahead
        .iter()
        .map(|s| s.iter().map(|x| x.0).collect())
        .collect();
    assert_eq!(req, vec![vec![p.0], vec![q.0], vec![p.0]]);
}

/// Display output shows rules with guards and lookahead.
#[test]
fn display_formats() {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut sb = StaBuilder::new(ty.clone(), alg.clone());
    let s = sb.state("evens");
    sb.leaf_rule(s, l, Formula::eq(Term::field(0).modulo(2), Term::int(0)));
    sb.simple_rule(s, n, Formula::True, vec![Some(s), Some(s)]);
    let la = sb.build(s);

    let mut b = SttrBuilder::new(ty.clone(), alg).with_lookahead(la);
    let q = b.state("guarded");
    b.rule(
        q,
        n,
        Formula::True,
        vec![[s].into_iter().collect(), Default::default()],
        Out::node(
            n,
            LabelFn::identity(1),
            vec![Out::Call(q, 0), Out::Call(q, 1)],
        ),
    );
    b.plain_rule(
        q,
        l,
        Formula::True,
        Out::node(l, LabelFn::identity(1), vec![]),
    );
    let sttr = b.build(q);
    let text = sttr.to_string();
    assert!(text.contains("STTR over BT"), "{text}");
    assert!(text.contains("given"), "{text}");
    assert!(text.contains("lookahead states"), "{text}");
}

/// Lookahead automaton over BT with two disjoint per-state languages:
/// `pos` (every leaf label > 0) and `neg` (every leaf label ≤ 0). Any
/// tree has at least one leaf, so L(pos) ∩ L(neg) = ∅.
fn pos_neg_lookahead() -> (Sta, StateId, StateId) {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut sb = StaBuilder::new(ty, alg);
    let pos = sb.state("pos");
    let neg = sb.state("neg");
    sb.leaf_rule(
        pos,
        l,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)),
    );
    sb.simple_rule(pos, n, Formula::True, vec![Some(pos), Some(pos)]);
    sb.leaf_rule(
        neg,
        l,
        Formula::cmp(CmpOp::Le, Term::field(0), Term::int(0)),
    );
    sb.simple_rule(neg, n, Formula::True, vec![Some(neg), Some(neg)]);
    (sb.build(pos), pos, neg)
}

/// Two rules on the same (state, constructor) with jointly satisfiable
/// guards and different outputs, built with an optional lookahead set
/// per rule on child 0.
fn guard_overlap_sttr(la_a: Option<StateId>, la_b: Option<StateId>) -> Sttr {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let (la, _, _) = pos_neg_lookahead();
    let mut b = SttrBuilder::new(ty, alg).with_lookahead(la);
    let q = b.state("q");
    let set = |s: Option<StateId>| s.into_iter().collect::<std::collections::BTreeSet<_>>();
    b.rule(
        q,
        n,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)),
        vec![set(la_a), Default::default()],
        Out::node(l, LabelFn::new(vec![Term::int(1)]), vec![]),
    );
    b.rule(
        q,
        n,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(5)),
        vec![set(la_b), Default::default()],
        Out::node(l, LabelFn::new(vec![Term::int(2)]), vec![]),
    );
    b.build(q)
}

/// Definition 9: overlapping guards on the same (state, constructor) with
/// different outputs break determinism when nothing disambiguates them.
#[test]
fn overlapping_guards_break_determinism() {
    let sttr = guard_overlap_sttr(None, None);
    assert!(!sttr.is_deterministic().unwrap());
    // But overlap does not affect linearity: each rule uses no child twice.
    assert!(sttr.is_linear());
    // Behaviorally: both rules fire where the guards overlap (x > 5).
    let (ty, _) = bt();
    let t = Tree::parse(&ty, "N[7](L[1], L[1])").unwrap();
    assert_eq!(sttr.run(&t).unwrap().len(), 2);
}

/// Disjoint lookahead languages on a shared child restore determinism
/// even though the guards overlap: the joint lookahead L(pos) ∩ L(neg)
/// is empty, so the two rules can never fire on the same input.
#[test]
fn disjoint_lookahead_restores_determinism() {
    let (_, pos, neg) = pos_neg_lookahead();
    let sttr = guard_overlap_sttr(Some(pos), Some(neg));
    assert!(sttr.is_deterministic().unwrap());
    assert!(sttr.is_linear());
    let (ty, _) = bt();
    for src in ["N[7](L[1], L[1])", "N[7](L[-1], L[1])", "N[1](L[0], L[0])"] {
        let t = Tree::parse(&ty, src).unwrap();
        assert!(
            sttr.run(&t).unwrap().len() <= 1,
            "nondeterministic on {src}"
        );
    }
}

/// Identical lookahead on both rules does NOT disambiguate: the joint
/// language is just L(pos), which is non-empty.
#[test]
fn shared_lookahead_does_not_disambiguate() {
    let (_, pos, _) = pos_neg_lookahead();
    let sttr = guard_overlap_sttr(Some(pos), Some(pos));
    assert!(!sttr.is_deterministic().unwrap());
}

/// Rules with identical outputs never count as a determinism conflict,
/// whatever their guards (they produce the same result anyway).
#[test]
fn identical_outputs_preserve_determinism() {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("q");
    let out = || Out::node(l, LabelFn::new(vec![Term::int(0)]), vec![]);
    b.plain_rule(
        q,
        n,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)),
        out(),
    );
    b.plain_rule(
        q,
        n,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(5)),
        out(),
    );
    let sttr = b.build(q);
    assert!(sttr.is_deterministic().unwrap());
}

/// Copying a subtree variable into two output positions breaks linearity
/// (Definition 5), independently of guards and lookahead.
#[test]
fn copying_output_is_nonlinear() {
    let (ty, alg) = bt();
    let l = ty.ctor_id("L").unwrap();
    let n = ty.ctor_id("N").unwrap();
    let (la, pos, _) = pos_neg_lookahead();
    let mut b = SttrBuilder::new(ty, alg).with_lookahead(la);
    let q = b.state("copy");
    b.rule(
        q,
        n,
        Formula::True,
        vec![[pos].into_iter().collect(), Default::default()],
        Out::node(
            n,
            LabelFn::identity(1),
            vec![Out::Call(q, 0), Out::Call(q, 0)],
        ),
    );
    b.plain_rule(
        q,
        l,
        Formula::True,
        Out::node(l, LabelFn::identity(1), vec![]),
    );
    let sttr = b.build(q);
    assert!(!sttr.is_linear());
    // Copying alone does not break determinism: one rule per constructor.
    assert!(sttr.is_deterministic().unwrap());
}

/// Theorem 4 through the batch runtime: evaluating a composed transducer
/// over a whole sample batch with `fast_rt::Plan` (shared memo, compiled
/// dispatch) matches running the factors sequentially per tree — i.e.
/// the composition law survives the plan path, not just `Sttr::run`.
#[test]
fn composition_law_holds_on_the_batch_path() {
    let f = relabel(Term::field(0).add(Term::int(1)), Term::field(0));
    let g = relabel(
        Term::field(0).mul(Term::int(2)),
        Term::field(0).sub(Term::int(3)),
    );
    let composed = compose(&f, &g).unwrap().sttr;
    let plan = fast_rt::Plan::compile(&composed);

    // Repeat the sample set: the clones share `Arc` addresses with the
    // originals, so the batch exercises cross-item memo reuse while
    // checking the law.
    let mut batch = samples(8);
    let clones: Vec<Tree> = batch.iter().take(20).cloned().collect();
    batch.extend(clones);

    let opts = fast_rt::RunOptions::default();
    let (results, stats) = plan.run_batch_with(&batch, &opts);
    assert_eq!(results.len(), batch.len());
    for (t, got) in batch.iter().zip(results) {
        let sequential: Vec<Tree> = f
            .run(t)
            .unwrap()
            .into_iter()
            .flat_map(|m| g.run(&m).unwrap())
            .collect();
        assert_eq!(got.unwrap(), sequential, "law broken on {t:?}");
    }
    assert!(
        stats.memo_hits > 0,
        "cloned samples must hit the shared memo: {stats:?}"
    );

    // Staged evaluation through two plans agrees with the fused plan.
    let plan_f = fast_rt::Plan::compile(&f);
    let plan_g = fast_rt::Plan::compile(&g);
    for t in samples(9) {
        let mid = plan_f.run(&t).unwrap();
        let staged: Vec<Tree> = mid.iter().flat_map(|m| plan_g.run(m).unwrap()).collect();
        assert_eq!(plan.run(&t).unwrap(), staged);
    }
}

/// Example 7 of the paper: composing through a rule that deletes a child
/// (`p̃(f[x](y1,y2)) --x>0--> p̃(y2)`) yields the reduced pair rule
/// `p.q(f[x](y1,y2)) --x>0--> p.q(y2)` — the deleted child's pair
/// requirement is simply absent.
#[test]
fn example7_deletion_reduction() {
    let ty = TreeType::new(
        "E7",
        LabelSig::single("x", Sort::Int),
        vec![("c", 0), ("f", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let c = ty.ctor_id("c").unwrap();
    let f = ty.ctor_id("f").unwrap();

    // S: p(f[x](y1,y2)) where x>0 → p(y2); p(c) → c.
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let p = b.state("p");
    b.plain_rule(
        p,
        f,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)),
        Out::Call(p, 1),
    );
    b.plain_rule(
        p,
        c,
        Formula::True,
        Out::node(c, LabelFn::identity(1), vec![]),
    );
    let s = b.build(p);

    // T: identity.
    let t = identity(&ty, &alg);
    let composed = compose(&s, &t).unwrap().sttr;

    // Behaviour: drop left spines while x > 0.
    let input = Tree::parse(&ty, "f[3](c[9], f[1](c[8], c[7]))").unwrap();
    assert_eq!(
        composed.run(&input).unwrap()[0].display(&ty).to_string(),
        "c[7]"
    );
    // Structure: the composed f-rule's output is a single pair call on
    // child 1, like the example's p̃.q(y2); child 0 is unconstrained in
    // the transducer rule (identity T imposes nothing on dropped input).
    let init = composed.initial();
    let rule = composed
        .rules(init)
        .iter()
        .find(|r| r.ctor == f)
        .expect("f-rule exists");
    assert!(matches!(rule.output, Out::Call(_, 1)));
    // Negative guard: no output when x ≤ 0 at the root.
    let input = Tree::parse(&ty, "f[0](c[1], c[2])").unwrap();
    assert!(composed.run(&input).unwrap().is_empty());
}
