//! Pins the `run_bounded` cap contract: hitting the cap errors — it
//! never truncates — and `cap == 0` forbids outputs without forbidding
//! empty (outside-the-domain) results. `fast-rt`'s `Plan::run_batch`
//! honors the same contract per item; its own test suite cross-checks
//! against these semantics.

use fast_core::{Out, Sttr, SttrBuilder, TransducerError, DEFAULT_RUN_CAP};
use fast_smt::{Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
use fast_trees::{Tree, TreeType};
use std::sync::Arc;

fn ilist() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "IList",
        LabelSig::single("i", Sort::Int),
        vec![("nil", 0), ("cons", 1)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

/// A nondeterministic transducer with 2^n outputs on a list of length n:
/// each element either keeps its label or is relabeled to 99.
fn stay_or_99() -> Sttr {
    let (ty, alg) = ilist();
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("q");
    b.plain_rule(
        q,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::identity(1), vec![]),
    );
    b.plain_rule(
        q,
        cons,
        Formula::True,
        Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
    );
    b.plain_rule(
        q,
        cons,
        Formula::True,
        Out::node(
            cons,
            LabelFn::new(vec![Term::int(99)]),
            vec![Out::Call(q, 0)],
        ),
    );
    b.build(q)
}

/// A partial transducer: defined only on lists whose head is even.
fn evens_only() -> Sttr {
    let (ty, alg) = ilist();
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();
    let even = Formula::eq(Term::field(0).modulo(2), Term::int(0));
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("evens");
    b.plain_rule(
        q,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::identity(1), vec![]),
    );
    b.plain_rule(
        q,
        cons,
        even,
        Out::node(cons, LabelFn::identity(1), vec![Out::Call(q, 0)]),
    );
    b.build(q)
}

fn list(ty: &TreeType, items: &[i64]) -> Tree {
    let mut text = String::from("nil[0]");
    for i in items.iter().rev() {
        text = format!("cons[{i}]({text})");
    }
    Tree::parse(ty, &text).unwrap()
}

#[test]
fn hitting_the_cap_errors_rather_than_truncating() {
    let nd = stay_or_99();
    let t = list(nd.ty(), &[1, 2, 3, 4]); // 2^4 = 16 outputs
    assert_eq!(nd.run_bounded(&t, 16).unwrap().len(), 16);
    // One less than the true output count: the whole run fails — no
    // silently shortened output set.
    let err = nd.run_bounded(&t, 15).unwrap_err();
    assert_eq!(
        err,
        TransducerError::Budget {
            context: "run",
            limit: 15
        }
    );
}

#[test]
fn cap_zero_allows_empty_results_only() {
    let f = evens_only();
    let ty = f.ty().clone();
    // Outside the domain: zero outputs fit under cap == 0.
    let odd = list(&ty, &[3]);
    assert_eq!(f.run_bounded(&odd, 0).unwrap(), Vec::<Tree>::new());
    // Inside the domain: the single output exceeds cap == 0 and errors.
    let even = list(&ty, &[2]);
    assert!(matches!(
        f.run_bounded(&even, 0),
        Err(TransducerError::Budget { limit: 0, .. })
    ));
}

#[test]
fn cap_binds_intermediate_sets_too() {
    // The blowup happens in the middle of the list; a root-level cap
    // still catches it because intermediate sets are bounded as well.
    let nd = stay_or_99();
    let t = list(nd.ty(), &[1, 2, 3, 4, 5, 6, 7, 8]); // 2^8 outputs
    assert!(nd.run_bounded(&t, 20).is_err());
}

#[test]
fn default_run_uses_default_cap() {
    let nd = stay_or_99();
    let t = list(nd.ty(), &[1, 2]);
    assert_eq!(nd.run(&t).unwrap().len(), 4);
    assert_eq!(nd.run_bounded(&t, DEFAULT_RUN_CAP).unwrap().len(), 4);
}
