//! Deterministic pins of past property-test failures involving
//! `preimage`.
//!
//! The shrunken counterexamples proptest found historically lived in the
//! root suite's `tests/properties.proptest-regressions`; the vendored
//! proptest stand-in does not replay regression files, so each entry is
//! reconstructed here as a plain test (and the seed line itself moved to
//! `properties.proptest-regressions` next to this file, keeping the
//! upstream-proptest format in case the real crate is ever dropped in).

use fast_core::{preimage, Out, Sttr, SttrBuilder};
use fast_smt::{CmpOp, Formula, LabelAlg, LabelFn, LabelSig, Sort, Term};
use fast_trees::{Tree, TreeType};
use std::sync::Arc;

fn bt() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

/// Same shape as the root suite's `bt_relabel`: guard-split relabeler.
fn bt_relabel(g: Formula, f_then: Term, f_else: Term) -> Sttr {
    let (ty, alg) = bt();
    let leaf = ty.ctor_id("L").unwrap();
    let node = ty.ctor_id("N").unwrap();
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("relabel");
    for (guard, fun) in [(g.clone(), f_then), (g.not(), f_else)] {
        b.plain_rule(
            q,
            leaf,
            guard.clone(),
            Out::node(leaf, LabelFn::new(vec![fun.clone()]), vec![]),
        );
        b.plain_rule(
            q,
            node,
            guard,
            Out::node(
                node,
                LabelFn::new(vec![fun]),
                vec![Out::Call(q, 0), Out::Call(q, 1)],
            ),
        );
    }
    b.build(q)
}

fn f0() -> Term {
    Term::field(0)
}

/// `cc 6dd774f3…` — the shrink of `preimage_pointwise`: a three-state
/// lookahead STA whose initial state requires different states on each
/// child, paired with a guard whose `mod` arithmetic needs exact
/// euclidean semantics. Pre-image membership must equal "some output is
/// accepted".
#[test]
fn cc_6dd774f3_preimage_pointwise() {
    let g = Formula::cmp(CmpOp::Ne, f0(), f0().add(f0().modulo(2)))
        .and(Formula::cmp(
            CmpOp::Gt,
            Term::int(4).sub(f0()).mul(f0()),
            f0().mul(Term::int(3)).add(Term::int(-1).mul(f0())),
        ))
        .and(Formula::cmp(
            CmpOp::Ne,
            f0().mul(Term::int(7)).modulo(6).modulo(11),
            f0().add(Term::int(-6))
                .sub(f0())
                .add(Term::int(9).add(f0())),
        ));
    let e1 = Term::int(5).sub(f0()).mul(Term::int(1)).modulo(5);
    let e2 = f0().mul(f0()).add(f0());
    let s = bt_relabel(g, e1, e2);

    let (ty, alg) = bt();
    let leaf = ty.ctor_id("L").unwrap();
    let node = ty.ctor_id("N").unwrap();
    let mut b = fast_automata::StaBuilder::new(ty.clone(), alg);
    let s0 = b.state("s0");
    let s1 = b.state("s1");
    let s2 = b.state("s2");
    b.leaf_rule(
        s0,
        leaf,
        Formula::cmp(
            CmpOp::Eq,
            Term::int(-6).sub(Term::int(-4)).add(f0().add(Term::int(3))),
            Term::int(-2).mul(f0()).sub(f0().modulo(3)),
        )
        .or(Formula::cmp(
            CmpOp::Le,
            Term::int(4).add(f0()).modulo(2),
            Term::int(-10).sub(f0()).modulo(6),
        )
        .and(Formula::cmp(
            CmpOp::Le,
            f0().sub(f0().mul(f0())),
            Term::int(-7).add(f0()).mul(f0().modulo(2)),
        )))
        .or(Formula::cmp(
            CmpOp::Lt,
            f0().mul(f0().mul(f0())),
            f0().sub(Term::int(-9).modulo(8)),
        )),
    );
    b.simple_rule(s0, node, Formula::True, vec![Some(s1), Some(s1)]);
    b.leaf_rule(
        s1,
        leaf,
        Formula::cmp(
            CmpOp::Eq,
            Term::int(-2).mul(f0().mul(f0())),
            f0().modulo(9).mul(Term::int(0)),
        )
        .and(Formula::cmp(
            CmpOp::Gt,
            f0(),
            Term::int(-8).sub(Term::int(-2)).modulo(7),
        ))
        .and(
            Formula::cmp(
                CmpOp::Eq,
                Term::int(-8).modulo(7).add(Term::int(1).modulo(6)),
                f0().mul(Term::int(9))
                    .mul(Term::int(1))
                    .mul(Term::int(5).mul(f0())),
            )
            .or(Formula::cmp(
                CmpOp::Ge,
                f0().sub(f0()).add(f0()),
                f0().add(Term::int(1))
                    .mul(Term::int(-7).sub(Term::int(5)).mul(Term::int(-5))),
            )),
        ),
    );
    b.simple_rule(s1, node, Formula::True, vec![Some(s0), Some(s2)]);
    b.leaf_rule(
        s2,
        leaf,
        Formula::cmp(
            CmpOp::Gt,
            Term::int(2).modulo(5).add(f0().add(f0())),
            f0().sub(Term::int(5)).sub(Term::int(8).mul(Term::int(-10))),
        )
        .and(Formula::cmp(
            CmpOp::Le,
            Term::int(3).modulo(5).sub(Term::int(6)).mul(f0().sub(f0())),
            Term::int(9).sub(f0().add(Term::int(0))).sub(f0().mul(f0())),
        ))
        .and(Formula::cmp(
            CmpOp::Ne,
            f0().sub(f0()).sub(f0()),
            Term::int(0).sub(Term::int(-7).modulo(3)),
        )),
    );
    b.simple_rule(s2, node, Formula::True, vec![Some(s0), Some(s2)]);
    let l = b.build(s2);

    let t = Tree::parse(&ty, "N[-4](N[1](N[-4](L[-1], L[-3]), L[7]), L[5])").unwrap();

    let pre = preimage(&s, &l).unwrap();
    let any_output_in = s.run(&t).unwrap().iter().any(|o| l.accepts(o));
    assert_eq!(pre.accepts(&t), any_output_in);
}
