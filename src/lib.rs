//! # fast — symbolic tree automata, transducers, and the Fast language
//!
//! A from-scratch Rust implementation of “Fast: a Transducer-Based
//! Language for Tree Manipulation” (D’Antoni, Veanes, Livshits, Molnar;
//! PLDI 2014): alternating symbolic tree automata (STAs), symbolic tree
//! transducers with regular lookahead (STTRs) including the paper's
//! composition algorithm, a self-contained label-theory solver standing in
//! for Z3, and the Fast DSL front-end.
//!
//! This crate is a facade: each layer lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`smt`] | `fast-smt` | labels, terms, formulas, decision procedures, effective Boolean algebras |
//! | [`trees`] | `fast-trees` | ranked tree types, trees, the Fig. 3 HTML encoding, generators |
//! | [`automata`] | `fast-automata` | alternating STAs: Boolean operations and decision procedures |
//! | [`core`] | `fast-core` | STTRs: run, domain, restriction, pre-image, **composition** |
//! | [`rt`] | `fast-rt` | batch evaluation: compiled plans, shared memo, work-stealing pool |
//! | [`lang`] | `fast-lang` | the Fast DSL: parser, compiler, evaluator, `fastc` CLI |
//! | [`classical`] | `fast-classical` | finite-alphabet baseline (§6) |
//!
//! # Quick start
//!
//! Run a Fast program end to end:
//!
//! ```
//! let program = r#"
//!     type BT[i: Int] { L(0), N(2) }
//!     lang pos: BT { L() where (i > 0) | N(x, y) given (pos x) (pos y) }
//!     trans double: BT -> BT {
//!       L() to (L [i * 2])
//!     | N(x, y) to (N [i * 2] (double x) (double y))
//!     }
//!     tree t: BT := (apply double (N [1] (L [2]) (L [3])))
//!     assert-true t in (pre-image double pos)
//! "#;
//! let compiled = fast::lang::compile(program)?;
//! assert!(compiled.report().all_passed());
//! # Ok::<(), fast::lang::Diagnostic>(())
//! ```
//!
//! Or drive the library API directly — see [`core::compose`] for the
//! composition entry point and the `examples/` directory for full
//! scenarios (HTML sanitization, AR conflict checking, deforestation,
//! program analysis, CSS analysis).

#![warn(missing_docs)]

pub use fast_automata as automata;
pub use fast_classical as classical;
pub use fast_core as core;
pub use fast_lang as lang;
pub use fast_rt as rt;
pub use fast_smt as smt;
pub use fast_trees as trees;

/// Convenient glob import: `use fast::prelude::*;`.
pub mod prelude {
    pub use fast_automata::{
        complement, difference, equivalent, includes, intersect, is_empty, is_universal, minimize,
        union, witness, Sta, StaBuilder, StateId,
    };
    pub use fast_core::{
        compose, identity, identity_restricted, preimage, restrict, restrict_out, type_check, Out,
        Sttr, SttrBuilder,
    };
    pub use fast_lang::compile;
    pub use fast_rt::Plan;
    pub use fast_smt::{
        Atom, BoolAlg, CmpOp, Formula, Label, LabelAlg, LabelFn, LabelSig, Sort, Term, TransAlg,
        Value,
    };
    pub use fast_trees::{Tree, TreeType};
}
