//! Fig. 1 of the paper: for each application, the analyses it relies on.
//!
//! | application        | composition | equivalence | pre-image |
//! |--------------------|-------------|-------------|-----------|
//! | Augmented reality  |      ✓      |      ✓      |           |
//! | HTML sanitization  |      ✓      |             |     ✓     |
//! | Deforestation      |      ✓      |             |           |
//! | Program analysis   |      ✓      |      ✓      |     ✓     |
//! | CSS analysis       |      ✓      |      ✓      |     ✓     |
//!
//! Each test below exercises one row's checked cells end to end.

use fast::prelude::*;
use std::sync::Arc;

type TyAlg = (Arc<TreeType>, Arc<LabelAlg>);

fn ilist() -> TyAlg {
    let ty = TreeType::new(
        "IList",
        LabelSig::single("i", Sort::Int),
        vec![("nil", 0), ("cons", 1)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

fn map_add(ty: &Arc<TreeType>, alg: &Arc<LabelAlg>, k: i64) -> Sttr {
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let q = b.state("map");
    b.plain_rule(
        q,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::identity(1), vec![]),
    );
    b.plain_rule(
        q,
        cons,
        Formula::True,
        Out::node(
            cons,
            LabelFn::new(vec![Term::field(0).add(Term::int(k))]),
            vec![Out::Call(q, 0)],
        ),
    );
    b.build(q)
}

fn range_lang(ty: &Arc<TreeType>, alg: &Arc<LabelAlg>, lo: i64, hi: i64) -> Sta {
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let s = b.state("range");
    b.leaf_rule(s, nil, Formula::True);
    b.simple_rule(
        s,
        cons,
        Formula::cmp(CmpOp::Ge, Term::field(0), Term::int(lo)).and(Formula::cmp(
            CmpOp::Le,
            Term::field(0),
            Term::int(hi),
        )),
        vec![Some(s)],
    );
    b.build(s)
}

/// Augmented reality: composition + equivalence.
#[test]
fn augmented_reality_row() {
    let (ty, alg) = ilist();
    // Composition of two relabelings…
    let a = map_add(&ty, &alg, 2);
    let b = map_add(&ty, &alg, 3);
    let ab = compose(&a, &b).unwrap().sttr;
    let ba = compose(&b, &a).unwrap().sttr;
    // …and equivalence of their domains (both total) plus behavior:
    // +2 then +3 ≡ +3 then +2 — checked on pre-images of a range.
    let r = range_lang(&ty, &alg, 0, 10);
    let pre_ab = preimage(&ab, &r).unwrap();
    let pre_ba = preimage(&ba, &r).unwrap();
    assert!(equivalent(&pre_ab, &pre_ba).unwrap());
    assert!(equivalent(&ab.domain(), &ba.domain()).unwrap());
}

/// HTML sanitization: composition + pre-image (the Fig. 2 pipeline).
#[test]
fn html_sanitization_row() {
    // Covered in depth by crates/lang/tests/fig2_sanitizer.rs; here the
    // same pipeline runs through the facade crate's DSL entry point.
    let program = r#"
        type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
        lang nodeTree: HtmlE {
          node(x1, x2, x3) given (nodeTree x2) (nodeTree x3)
        | nil() where (tag = "")
        }
        trans remScript: HtmlE -> HtmlE {
          node(x1, x2, x3) where (tag != "script")
            to (node [tag] x1 (remScript x2) (remScript x3))
        | node(x1, x2, x3) where (tag = "script") to (remScript x3)
        | nil() to (nil [tag])
        }
        lang badOutput: HtmlE {
          node(x1, x2, x3) where (tag = "script")
        | node(x1, x2, x3) given (badOutput x2)
        | node(x1, x2, x3) given (badOutput x3)
        }
        def sani: HtmlE -> HtmlE := (restrict remScript nodeTree)
        def bad_inputs: HtmlE := (pre-image sani badOutput)
        assert-true (is-empty bad_inputs)
    "#;
    let compiled = fast::lang::compile(program).unwrap();
    assert!(compiled.report().all_passed());
}

/// Deforestation: composition only.
#[test]
fn deforestation_row() {
    let (ty, alg) = ilist();
    let m = map_add(&ty, &alg, 1);
    let fused = compose(&compose(&m, &m).unwrap().sttr, &m).unwrap().sttr;
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();
    let input = Tree::new(
        cons,
        Label::single(0i64),
        vec![Tree::leaf(nil, Label::single(0i64))],
    );
    let out = fused.run(&input).unwrap();
    assert_eq!(out[0].label().get(0).as_int(), Some(3));
    // Still a single state pair after fusing: one traversal.
    assert!(fused.state_count() <= 2);
}

/// Program analysis: composition + equivalence + pre-image.
#[test]
fn program_analysis_row() {
    let (ty, alg) = ilist();
    let m = map_add(&ty, &alg, 5);
    let id = identity(&ty, &alg);
    let round_trip = compose(&m, &map_add(&ty, &alg, -5)).unwrap().sttr;
    // Equivalence: (+5 then −5) has the same pre-images as the identity.
    let r = range_lang(&ty, &alg, 2, 4);
    let via_round_trip = preimage(&round_trip, &r).unwrap();
    let via_id = preimage(&id, &r).unwrap();
    assert!(equivalent(&via_round_trip, &via_id).unwrap());
    // Pre-image shifts the range.
    let direct = preimage(&m, &r).unwrap();
    let shifted = range_lang(&ty, &alg, -3, -1);
    assert!(equivalent(&direct, &shifted).unwrap());
}

/// CSS analysis: composition + equivalence + pre-image over multi-field
/// string labels.
#[test]
fn css_analysis_row() {
    let ty = TreeType::new(
        "SHtml",
        LabelSig::new(vec![("tag".into(), Sort::Str), ("color".into(), Sort::Str)]),
        vec![("nil", 0), ("node", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let nil = ty.ctor_id("nil").unwrap();
    let node = ty.ctor_id("node").unwrap();

    // Two CSS "programs": set p's color to black / to blue.
    let rule = |value: &str| {
        let mut b = SttrBuilder::new(ty.clone(), alg.clone());
        let q = b.state("apply");
        b.plain_rule(
            q,
            nil,
            Formula::True,
            Out::node(nil, LabelFn::identity(2), vec![]),
        );
        let is_p = Formula::eq(Term::field(0), Term::str("p"));
        b.plain_rule(
            q,
            node,
            is_p.clone(),
            Out::node(
                node,
                LabelFn::new(vec![Term::field(0), Term::str(value)]),
                vec![Out::Call(q, 0), Out::Call(q, 1)],
            ),
        );
        b.plain_rule(
            q,
            node,
            is_p.not(),
            Out::node(
                node,
                LabelFn::identity(2),
                vec![Out::Call(q, 0), Out::Call(q, 1)],
            ),
        );
        b.build(q)
    };
    let black = rule("black");
    let blue = rule("blue");
    // Composition: later rules win — black then blue ≡ blue alone on the
    // pre-image of "some p is blue".
    let composed = compose(&black, &blue).unwrap().sttr;
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let s = b.state("some_blue_p");
    b.rule(
        s,
        node,
        Formula::eq(Term::field(0), Term::str("p"))
            .and(Formula::eq(Term::field(1), Term::str("blue"))),
        vec![Default::default(), Default::default()],
    );
    b.simple_rule(s, node, Formula::True, vec![Some(s), None]);
    b.simple_rule(s, node, Formula::True, vec![None, Some(s)]);
    let some_blue_p = b.build(s);
    let p1 = preimage(&composed, &some_blue_p).unwrap();
    let p2 = preimage(&blue, &some_blue_p).unwrap();
    assert!(equivalent(&p1, &p2).unwrap());
}
