//! JSON round-trips for the serializable data structures (feature
//! `serde`, enabled for these tests through the facade crate's
//! dev-dependencies).

use fast::prelude::*;
use fast::trees::TreeType as TT;

#[test]
fn values_and_labels() {
    for v in [
        Value::Int(-42),
        Value::Bool(true),
        Value::Str("scr\"ipt".into()),
        Value::Char('λ'),
    ] {
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<Value>(&json).unwrap(), v);
    }
    let l = Label::new(vec![Value::Int(1), Value::Str("x".into())]);
    let json = serde_json::to_string(&l).unwrap();
    assert_eq!(serde_json::from_str::<Label>(&json).unwrap(), l);
}

#[test]
fn terms_and_formulas() {
    let t = Term::field(0).add(Term::int(5)).modulo(26).mul(Term::field(1));
    let json = serde_json::to_string(&t).unwrap();
    assert_eq!(serde_json::from_str::<Term>(&json).unwrap(), t);

    let f = Formula::eq(Term::field(0).modulo(2), Term::int(1))
        .and(Formula::ne(Term::field(1), Term::str("script")))
        .or(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(-3)).not());
    let json = serde_json::to_string(&f).unwrap();
    let back: Formula = serde_json::from_str(&json).unwrap();
    assert_eq!(back, f);
    // Semantics preserved, not just syntax.
    let l = Label::new(vec![Value::Int(3), Value::Str("div".into())]);
    assert_eq!(back.eval(&l), f.eval(&l));

    let lf = LabelFn::new(vec![Term::field(0).add(Term::int(1)), Term::str("k")]);
    let json = serde_json::to_string(&lf).unwrap();
    assert_eq!(serde_json::from_str::<LabelFn>(&json).unwrap(), lf);
}

#[test]
fn tree_types_validate_on_deserialize() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let json = serde_json::to_string(ty.as_ref()).unwrap();
    let back: TT = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, ty.as_ref());
    // Violated invariants are rejected.
    let no_nullary = r#"{"name":"B","sig":{"fields":[]},"ctors":[["n",2]]}"#;
    assert!(serde_json::from_str::<TT>(no_nullary)
        .unwrap_err()
        .to_string()
        .contains("nullary"));
    let dup = r#"{"name":"B","sig":{"fields":[]},"ctors":[["n",0],["n",1]]}"#;
    assert!(serde_json::from_str::<TT>(dup)
        .unwrap_err()
        .to_string()
        .contains("duplicate"));
}

#[test]
fn trees_round_trip() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let t = Tree::parse(&ty, "N[1](N[2](L[3], L[4]), L[-5])").unwrap();
    let json = serde_json::to_string(&t).unwrap();
    let back: Tree = serde_json::from_str(&json).unwrap();
    assert_eq!(back, t);
    assert!(back.conforms_to(&ty));
}

#[test]
fn persisted_counterexample_is_usable() {
    // The practical workflow: persist a verification counterexample,
    // reload it, and replay it against the sanitizer.
    let program = r#"
        type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
        trans remScript: HtmlE -> HtmlE {
          node(x1, x2, x3) where (tag != "script")
            to (node [tag] x1 (remScript x2) (remScript x3))
        | node(x1, x2, x3) where (tag = "script") to x3
        | nil() to (nil [tag])
        }
        lang badOutput: HtmlE {
          node(x1, x2, x3) where (tag = "script")
        | node(x1, x2, x3) given (badOutput x2)
        | node(x1, x2, x3) given (badOutput x3)
        }
        def bad_inputs: HtmlE := (pre-image remScript badOutput)
        assert-true (is-empty bad_inputs)
    "#;
    let compiled = fast::lang::compile(program).unwrap();
    let ty = compiled.tree_type("HtmlE").unwrap().clone();
    let cx_text = compiled.report().assertions[0]
        .counterexample
        .clone()
        .expect("buggy remScript has a counterexample");
    let cx = Tree::parse(&ty, &cx_text).unwrap();
    let json = serde_json::to_string(&cx).unwrap();
    let reloaded: Tree = serde_json::from_str(&json).unwrap();
    let bad = compiled.lang("badOutput").unwrap();
    let outputs = compiled.apply("remScript", &reloaded).unwrap();
    assert!(outputs.iter().any(|o| bad.accepts(o)));
}
