//! Round-trips for the serializable data structures: JSON through the
//! workspace's dependency-free `fast-json` crate, and the binary layer —
//! `fast_smt::bin` codec primitives and the `.fastc` artifact container —
//! which must reproduce values (and whole compiled programs) exactly.

use fast::prelude::*;
use fast::rt::{Artifact, ArtifactBuilder, ArtifactError};
use fast::smt::bin::{self, ByteReader, ByteWriter, FormulaPool};
use fast::trees::TreeType as TT;
use fast_json::{FromJson, Json, ToJson};

fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(x: &T) -> T {
    let text = x.to_json().to_string();
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
    let back = T::from_json(&v).unwrap_or_else(|e| panic!("decode {text}: {e}"));
    assert_eq!(&back, x, "round-trip through {text}");
    back
}

#[test]
fn values_and_labels() {
    for v in [
        Value::Int(-42),
        Value::Bool(true),
        Value::Str("scr\"ipt".into()),
        Value::Char('λ'),
    ] {
        round_trip(&v);
    }
    round_trip(&Label::new(vec![Value::Int(1), Value::Str("x".into())]));
}

#[test]
fn terms_and_formulas() {
    let t = Term::field(0)
        .add(Term::int(5))
        .modulo(26)
        .mul(Term::field(1));
    round_trip(&t);

    let f = Formula::eq(Term::field(0).modulo(2), Term::int(1))
        .and(Formula::ne(Term::field(1), Term::str("script")))
        .or(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(-3)).not());
    let back = round_trip(&f);
    // Semantics preserved, not just syntax.
    let l = Label::new(vec![Value::Int(3), Value::Str("div".into())]);
    assert_eq!(back.eval(&l), f.eval(&l));

    round_trip(&LabelFn::new(vec![
        Term::field(0).add(Term::int(1)),
        Term::str("k"),
    ]));
}

#[test]
fn tree_types_validate_on_deserialize() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    round_trip(ty.as_ref());
    // Violated invariants are rejected.
    let no_nullary = Json::parse(r#"{"name":"B","sig":[],"ctors":[["n",2]]}"#).unwrap();
    assert!(TT::from_json(&no_nullary)
        .unwrap_err()
        .to_string()
        .contains("nullary"));
    let dup = Json::parse(r#"{"name":"B","sig":[],"ctors":[["n",0],["n",1]]}"#).unwrap();
    assert!(TT::from_json(&dup)
        .unwrap_err()
        .to_string()
        .contains("duplicate"));
}

#[test]
fn trees_round_trip() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let t = Tree::parse(&ty, "N[1](N[2](L[3], L[4]), L[-5])").unwrap();
    let back = round_trip(&t);
    assert!(back.conforms_to(&ty));
}

// ----------------------------------------------------- binary round-trips

/// The `fast_smt::bin` primitives are exact inverses: every value class
/// the `.fastc` format stores — sorts, values, labels, signatures,
/// terms, formulas, label functions — survives encode → decode
/// unchanged, and the formula pool preserves interned identity.
#[test]
fn binary_codec_round_trips_label_theory_values() {
    let mut w = ByteWriter::new();
    let sig = LabelSig::new(vec![
        ("i".to_string(), Sort::Int),
        ("s".to_string(), Sort::Str),
    ]);
    let label = Label::new(vec![Value::Int(-7), Value::Str("scr\"ipt".into())]);
    let term = Term::field(0)
        .add(Term::int(5))
        .modulo(26)
        .mul(Term::field(0));
    let formula = Formula::eq(Term::field(0).modulo(2), Term::int(1))
        .and(Formula::ne(Term::field(1), Term::str("script")))
        .or(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(-3)).not());
    let lf = LabelFn::new(vec![Term::field(0).add(Term::int(1)), Term::str("k")]);

    bin::write_sort(&mut w, Sort::Char);
    bin::write_value(&mut w, &Value::Char('λ'));
    bin::write_label(&mut w, &label);
    bin::write_sig(&mut w, &sig);
    bin::write_term(&mut w, &term);
    bin::write_formula(&mut w, &formula);
    bin::write_label_fn(&mut w, &lf);
    let bytes = w.into_bytes();

    let mut r = ByteReader::new(&bytes);
    assert_eq!(bin::read_sort(&mut r).unwrap(), Sort::Char);
    assert_eq!(bin::read_value(&mut r).unwrap(), Value::Char('λ'));
    assert_eq!(bin::read_label(&mut r).unwrap(), label);
    assert_eq!(bin::read_sig(&mut r).unwrap(), sig);
    assert_eq!(bin::read_term(&mut r).unwrap(), term);
    let f_back = bin::read_formula(&mut r).unwrap();
    assert_eq!(f_back, formula);
    assert_eq!(f_back.eval(&label), formula.eval(&label));
    assert_eq!(bin::read_label_fn(&mut r).unwrap(), lf);
    assert!(r.is_empty(), "every written byte must be consumed");

    // Formula pool: ids stay dense and interned identity survives.
    let mut pool = FormulaPool::new();
    let ia = fast::smt::intern(formula.clone());
    let ib = fast::smt::intern(Formula::True);
    assert_eq!(pool.index_of(&ia), 0);
    assert_eq!(pool.index_of(&ib), 1);
    assert_eq!(pool.index_of(&ia), 0, "repeat lookups reuse the slot");
    let mut w = ByteWriter::new();
    pool.write(&mut w);
    let bytes = w.into_bytes();
    let back = bin::read_formula_pool(&mut ByteReader::new(&bytes)).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0], ia, "re-interning restores id equality");
    assert_eq!(back[1], ib);
}

/// A whole compiled program survives the artifact container: every
/// transducer a source program defines comes back runnable with
/// identical semantics, file save/load included, and the container is
/// self-checking against corruption on disk.
#[test]
fn compiled_program_round_trips_through_artifact_file() {
    let program = r#"
        type BT[x: Int] { L(0), N(2) }
        trans flip: BT -> BT {
          N(a, b) where (x >= 0) to (N [0 - x] (flip b) (flip a))
        | N(a, b) where (x < 0) to (N [x] (flip a) (flip b))
        | L() to (L [x + 1])
        }
    "#;
    let compiled = fast::lang::compile(program).unwrap();
    let ty = compiled.tree_type("BT").unwrap().clone();

    let mut b = ArtifactBuilder::new();
    b.add_transducer("flip", compiled.transducer("flip").unwrap());
    let art = b.build();

    let dir = std::env::temp_dir().join("fast_serde_round_trip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flip.fastc");
    art.save(&path).unwrap();
    let loaded = Artifact::load(&path).unwrap();

    let plan = loaded.transducer("flip").unwrap();
    assert_eq!(loaded.transducer_type("flip").unwrap(), &ty);
    let input = Tree::parse(&ty, "N[3](N[-2](L[1], L[4]), L[0])").unwrap();
    let want = compiled.apply("flip", &input).unwrap();
    let mut got = plan.run(&input).unwrap();
    let mut want_sorted = want.clone();
    got.sort();
    want_sorted.sort();
    assert_eq!(got, want_sorted);

    // Loading is also encoding-stable and corruption is detected.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(loaded.encode(), bytes);
    let mut bent = bytes.clone();
    let last = bent.len() - 1;
    bent[last] ^= 0x40;
    std::fs::write(&path, &bent).unwrap();
    assert!(matches!(
        Artifact::load(&path),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn persisted_counterexample_is_usable() {
    // The practical workflow: persist a verification counterexample,
    // reload it, and replay it against the sanitizer.
    let program = r#"
        type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
        trans remScript: HtmlE -> HtmlE {
          node(x1, x2, x3) where (tag != "script")
            to (node [tag] x1 (remScript x2) (remScript x3))
        | node(x1, x2, x3) where (tag = "script") to x3
        | nil() to (nil [tag])
        }
        lang badOutput: HtmlE {
          node(x1, x2, x3) where (tag = "script")
        | node(x1, x2, x3) given (badOutput x2)
        | node(x1, x2, x3) given (badOutput x3)
        }
        def bad_inputs: HtmlE := (pre-image remScript badOutput)
        assert-true (is-empty bad_inputs)
    "#;
    let compiled = fast::lang::compile(program).unwrap();
    let ty = compiled.tree_type("HtmlE").unwrap().clone();
    let cx_text = compiled.report().assertions[0]
        .counterexample
        .clone()
        .expect("buggy remScript has a counterexample");
    let cx = Tree::parse(&ty, &cx_text).unwrap();
    let reloaded = round_trip(&cx);
    let bad = compiled.lang("badOutput").unwrap();
    let outputs = compiled.apply("remScript", &reloaded).unwrap();
    assert!(outputs.iter().any(|o| bad.accepts(o)));
}
