//! JSON round-trips for the serializable data structures, through the
//! workspace's dependency-free `fast-json` crate.

use fast::prelude::*;
use fast::trees::TreeType as TT;
use fast_json::{FromJson, Json, ToJson};

fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(x: &T) -> T {
    let text = x.to_json().to_string();
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
    let back = T::from_json(&v).unwrap_or_else(|e| panic!("decode {text}: {e}"));
    assert_eq!(&back, x, "round-trip through {text}");
    back
}

#[test]
fn values_and_labels() {
    for v in [
        Value::Int(-42),
        Value::Bool(true),
        Value::Str("scr\"ipt".into()),
        Value::Char('λ'),
    ] {
        round_trip(&v);
    }
    round_trip(&Label::new(vec![Value::Int(1), Value::Str("x".into())]));
}

#[test]
fn terms_and_formulas() {
    let t = Term::field(0)
        .add(Term::int(5))
        .modulo(26)
        .mul(Term::field(1));
    round_trip(&t);

    let f = Formula::eq(Term::field(0).modulo(2), Term::int(1))
        .and(Formula::ne(Term::field(1), Term::str("script")))
        .or(Formula::cmp(CmpOp::Lt, Term::field(0), Term::int(-3)).not());
    let back = round_trip(&f);
    // Semantics preserved, not just syntax.
    let l = Label::new(vec![Value::Int(3), Value::Str("div".into())]);
    assert_eq!(back.eval(&l), f.eval(&l));

    round_trip(&LabelFn::new(vec![
        Term::field(0).add(Term::int(1)),
        Term::str("k"),
    ]));
}

#[test]
fn tree_types_validate_on_deserialize() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    round_trip(ty.as_ref());
    // Violated invariants are rejected.
    let no_nullary = Json::parse(r#"{"name":"B","sig":[],"ctors":[["n",2]]}"#).unwrap();
    assert!(TT::from_json(&no_nullary)
        .unwrap_err()
        .to_string()
        .contains("nullary"));
    let dup = Json::parse(r#"{"name":"B","sig":[],"ctors":[["n",0],["n",1]]}"#).unwrap();
    assert!(TT::from_json(&dup)
        .unwrap_err()
        .to_string()
        .contains("duplicate"));
}

#[test]
fn trees_round_trip() {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let t = Tree::parse(&ty, "N[1](N[2](L[3], L[4]), L[-5])").unwrap();
    let back = round_trip(&t);
    assert!(back.conforms_to(&ty));
}

#[test]
fn persisted_counterexample_is_usable() {
    // The practical workflow: persist a verification counterexample,
    // reload it, and replay it against the sanitizer.
    let program = r#"
        type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
        trans remScript: HtmlE -> HtmlE {
          node(x1, x2, x3) where (tag != "script")
            to (node [tag] x1 (remScript x2) (remScript x3))
        | node(x1, x2, x3) where (tag = "script") to x3
        | nil() to (nil [tag])
        }
        lang badOutput: HtmlE {
          node(x1, x2, x3) where (tag = "script")
        | node(x1, x2, x3) given (badOutput x2)
        | node(x1, x2, x3) given (badOutput x3)
        }
        def bad_inputs: HtmlE := (pre-image remScript badOutput)
        assert-true (is-empty bad_inputs)
    "#;
    let compiled = fast::lang::compile(program).unwrap();
    let ty = compiled.tree_type("HtmlE").unwrap().clone();
    let cx_text = compiled.report().assertions[0]
        .counterexample
        .clone()
        .expect("buggy remScript has a counterexample");
    let cx = Tree::parse(&ty, &cx_text).unwrap();
    let reloaded = round_trip(&cx);
    let bad = compiled.lang("badOutput").unwrap();
    let outputs = compiled.apply("remScript", &reloaded).unwrap();
    assert!(outputs.iter().any(|o| bad.accepts(o)));
}
