//! Property-based tests over the public API: solver soundness against
//! brute force, Boolean language operations against pointwise membership,
//! normalization/determinization/minimization as language-preserving
//! transformations, and composition against sequential application.
//!
//! Shrunken counterexamples are not kept here: each historical failure
//! is pinned as a deterministic test in the crate that owns the buggy
//! operation (e.g. `crates/core/tests/preimage_regressions.rs`, with the
//! original proptest seed line in the `properties.proptest-regressions`
//! file beside it).

use fast::prelude::*;
use fast::smt::solver::{solve, SatResult};
use proptest::prelude::*;
use std::sync::Arc;

// ---------- strategies ----------

fn int_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![Just(Term::field(0)), (-10i64..10).prop_map(Term::int)];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner, 2u32..12).prop_map(|(a, m)| a.modulo(m)),
        ]
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn formula() -> impl Strategy<Value = Formula> {
    let atom = (cmp_op(), int_term(), int_term()).prop_map(|(op, a, b)| Formula::cmp(op, a, b));
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::not),
        ]
    })
}

fn bt() -> (Arc<TreeType>, Arc<LabelAlg>) {
    let ty = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    (ty, alg)
}

fn bt_tree() -> impl Strategy<Value = Tree> {
    let (ty, _) = bt();
    let leaf_id = ty.ctor_id("L").unwrap();
    let node_id = ty.ctor_id("N").unwrap();
    let leaf = (-8i64..8).prop_map(move |v| Tree::leaf(leaf_id, Label::single(v)));
    leaf.prop_recursive(4, 24, 2, move |inner| {
        ((-8i64..8), inner.clone(), inner)
            .prop_map(move |(v, a, b)| Tree::new(node_id, Label::single(v), vec![a, b]))
    })
}

/// A small random STA over BT: each state has a random leaf guard and a
/// node rule pointing at random child states.
fn bt_sta() -> impl Strategy<Value = Sta> {
    (1usize..4).prop_flat_map(|n| {
        let guards = proptest::collection::vec(formula(), n);
        let kids = proptest::collection::vec((0..n, 0..n), n);
        (guards, kids, 0..n).prop_map(move |(guards, kids, init)| {
            let (ty, alg) = bt();
            let leaf = ty.ctor_id("L").unwrap();
            let node = ty.ctor_id("N").unwrap();
            let mut b = StaBuilder::new(ty, alg);
            let states: Vec<StateId> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
            for i in 0..n {
                b.leaf_rule(states[i], leaf, guards[i].clone());
                b.simple_rule(
                    states[i],
                    node,
                    Formula::True,
                    vec![Some(states[kids[i].0]), Some(states[kids[i].1])],
                );
            }
            b.build(states[init])
        })
    })
}

// ---------- solver ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solver soundness: `Sat` witnesses satisfy the formula; `Unsat`
    /// formulas have no witness in a brute-force window.
    #[test]
    fn solver_sound_against_brute_force(f in formula()) {
        let sig = LabelSig::single("i", Sort::Int);
        match solve(&sig, &f) {
            SatResult::Sat(model) => prop_assert!(f.eval(&model), "bad witness for {f}"),
            SatResult::Unsat => {
                for x in -60i64..60 {
                    prop_assert!(!f.eval(&Label::single(x)),
                                 "Unsat but {x} satisfies {f}");
                }
            }
            SatResult::Unknown => {}
        }
    }

    /// Simplification preserves semantics.
    #[test]
    fn simplify_preserves_semantics(f in formula(), x in -40i64..40) {
        let l = Label::single(x);
        prop_assert_eq!(f.eval(&l), f.simplify().eval(&l));
    }

    /// Substitution matches composition: φ(e(x)) evaluated directly equals
    /// φ at e(x).
    #[test]
    fn subst_matches_composition(f in formula(), e in int_term(), x in -20i64..20) {
        let l = Label::single(x);
        if let Ok(v) = e.eval(&l) {
            let inner = Label::new(vec![v]);
            prop_assert_eq!(f.subst(std::slice::from_ref(&e)).eval(&l), f.eval(&inner));
        }
    }
}

// ---------- automata ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Union / intersection / difference are pointwise Boolean operations
    /// on membership.
    #[test]
    fn boolean_ops_pointwise(a in bt_sta(), b in bt_sta(), t in bt_tree()) {
        let (ma, mb) = (a.accepts(&t), b.accepts(&t));
        prop_assert_eq!(union(&a, &b).accepts(&t), ma || mb);
        prop_assert_eq!(intersect(&a, &b).accepts(&t), ma && mb);
        if let Ok(d) = difference(&a, &b) {
            prop_assert_eq!(d.accepts(&t), ma && !mb);
        }
    }

    /// Complement flips membership.
    #[test]
    fn complement_pointwise(a in bt_sta(), t in bt_tree()) {
        if let Ok(c) = complement(&a) {
            prop_assert_eq!(c.accepts(&t), !a.accepts(&t));
        }
    }

    /// Normalization and minimization preserve the designated language.
    #[test]
    fn normalize_minimize_preserve(a in bt_sta(), t in bt_tree()) {
        if let Ok(n) = fast::automata::normalize(&a) {
            prop_assert_eq!(n.accepts(&t), a.accepts(&t));
        }
        if let Ok(m) = minimize(&a) {
            prop_assert_eq!(m.accepts(&t), a.accepts(&t));
        }
    }

    /// Emptiness and witness agree; witnesses are members.
    #[test]
    fn emptiness_vs_witness(a in bt_sta()) {
        let e = is_empty(&a).unwrap();
        match witness(&a).unwrap() {
            Some(w) => {
                prop_assert!(!e);
                prop_assert!(a.accepts(&w));
            }
            None => prop_assert!(e, "non-empty language must yield a witness"),
        }
    }

    /// Inclusion is consistent with sampled membership.
    #[test]
    fn inclusion_sound(a in bt_sta(), b in bt_sta(), t in bt_tree()) {
        if includes(&a, &b).unwrap() && a.accepts(&t) {
            prop_assert!(b.accepts(&t));
        }
    }
}

// ---------- transducers ----------

/// A deterministic, linear transducer over BT: relabel with one of two
/// label functions chosen by a guard, recursing on both children.
fn bt_relabel(g: Formula, f_then: Term, f_else: Term) -> Sttr {
    let (ty, alg) = bt();
    let leaf = ty.ctor_id("L").unwrap();
    let node = ty.ctor_id("N").unwrap();
    let mut b = SttrBuilder::new(ty, alg);
    let q = b.state("relabel");
    for (guard, fun) in [(g.clone(), f_then), (g.not(), f_else)] {
        b.plain_rule(
            q,
            leaf,
            guard.clone(),
            Out::node(leaf, LabelFn::new(vec![fun.clone()]), vec![]),
        );
        b.plain_rule(
            q,
            node,
            guard,
            Out::node(
                node,
                LabelFn::new(vec![fun]),
                vec![Out::Call(q, 0), Out::Call(q, 1)],
            ),
        );
    }
    b.build(q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Composition equals sequential application for deterministic
    /// (single-valued) left factors — Theorem 4's exactness direction.
    #[test]
    fn compose_equals_sequential(
        g1 in formula(), g2 in formula(),
        e1 in int_term(), e2 in int_term(),
        e3 in int_term(), e4 in int_term(),
        t in bt_tree(),
    ) {
        let s = bt_relabel(g1, e1, e2);
        let u = bt_relabel(g2, e3, e4);
        prop_assume!(s.is_deterministic().unwrap());
        let c = compose(&s, &u).unwrap().sttr;
        let sequential: Vec<Tree> = s
            .run(&t)
            .unwrap()
            .into_iter()
            .flat_map(|m| u.run(&m).unwrap())
            .collect();
        prop_assert_eq!(c.run(&t).unwrap(), sequential);
    }

    /// Pre-image membership is existential over outputs.
    #[test]
    fn preimage_pointwise(
        g in formula(), e1 in int_term(), e2 in int_term(),
        l in bt_sta(), t in bt_tree(),
    ) {
        let s = bt_relabel(g, e1, e2);
        let pre = preimage(&s, &l).unwrap();
        let any_output_in = s.run(&t).unwrap().iter().any(|o| l.accepts(o));
        prop_assert_eq!(pre.accepts(&t), any_output_in);
    }

    /// The domain automaton accepts exactly the inputs with an output.
    #[test]
    fn domain_pointwise(g in formula(), e1 in int_term(), e2 in int_term(), t in bt_tree()) {
        let s = bt_relabel(g, e1, e2);
        let has_output = !s.run(&t).unwrap().is_empty();
        prop_assert_eq!(s.domain().accepts(&t), has_output);
    }

    /// restrict/restrict-out behave as input/output filters.
    #[test]
    fn restriction_pointwise(
        g in formula(), e1 in int_term(), e2 in int_term(),
        l in bt_sta(), t in bt_tree(),
    ) {
        let s = bt_relabel(g, e1, e2);
        let rin = restrict(&s, &l).unwrap();
        let expected: Vec<Tree> =
            if l.accepts(&t) { s.run(&t).unwrap() } else { Vec::new() };
        prop_assert_eq!(rin.run(&t).unwrap(), expected);

        let rout = restrict_out(&s, &l).unwrap();
        let expected: Vec<Tree> = s
            .run(&t)
            .unwrap()
            .into_iter()
            .filter(|o| l.accepts(o))
            .collect();
        prop_assert_eq!(rout.run(&t).unwrap(), expected);
    }
}
