//! §5.4: static analysis of composed functional programs (Fig. 8). The
//! pipeline map → filter → map → filter provably deletes every element,
//! which Fast establishes by restricting the composed transducer's output
//! to non-empty lists and checking emptiness.
//!
//! Run with: `cargo run --example program_analysis`

const FIG8: &str = r#"
type IList[i: Int] { nil(0), cons(1) }

// map_caesar replaces each x with (x + 5) % 26.
trans map_caesar: IList -> IList {
  nil() to (nil [0])
| cons(y) to (cons [(i + 5) % 26] (map_caesar y))
}

// filter_ev keeps only even elements.
trans filter_ev: IList -> IList {
  nil() to (nil [0])
| cons(y) where (i % 2 = 0) to (cons [i] (filter_ev y))
| cons(y) where not (i % 2 = 0) to (filter_ev y)
}

lang not_emp_list: IList { cons(x) }

def comp: IList -> IList := (compose map_caesar filter_ev)
def comp2: IList -> IList := (compose comp comp)
def restr: IList -> IList := (restrict-out comp2 not_emp_list)

// comp2 never outputs a non-empty list: the second map makes every
// surviving (even) element odd, so the second filter deletes them all.
assert-true (is-empty restr)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = std::time::Instant::now();
    let compiled = fast::lang::compile(FIG8)?;
    let elapsed = start.elapsed();
    for a in &compiled.report().assertions {
        println!(
            "{} assert-{} {}",
            if a.passed() { "PASS" } else { "FAIL" },
            a.expected,
            a.description
        );
    }
    println!(
        "whole analysis took {:.2} ms (the paper reports < 10 ms)",
        elapsed.as_secs_f64() * 1e3
    );

    // Demonstrate on a concrete list.
    let ty = compiled.tree_type("IList").unwrap();
    let input = fast::trees::Tree::parse(ty, "cons[1](cons[2](cons[3](cons[4](nil[0]))))")?;
    let out = compiled
        .apply("comp2", &input)
        .map_err(std::io::Error::other)?;
    println!("comp2({}) = {}", input.display(ty), out[0].display(ty));
    Ok(())
}
