//! §5.5 sketch: CSS analysis with symbolic tree transducers. A CSS rule
//! like `div p { color: black }` becomes a transducer over styled-HTML
//! trees; the readability check "black text never sits on a black
//! background" is a pre-image emptiness question — and symbolic labels
//! let the colors range over *all* strings, which the paper notes is out
//! of reach for explicit-alphabet tree logics.
//!
//! Run with: `cargo run --example css_analysis`

use fast::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Styled HTML: every node carries (tag, color, background).
    let ty = TreeType::new(
        "SHtml",
        LabelSig::new(vec![
            ("tag".into(), Sort::Str),
            ("color".into(), Sort::Str),
            ("bg".into(), Sort::Str),
        ]),
        vec![("nil", 0), ("node", 2)], // node(first-child, next-sibling)
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let nil = ty.ctor_id("nil").unwrap();
    let node = ty.ctor_id("node").unwrap();
    let (tag, color, bg) = (Term::field(0), Term::field(1), Term::field(2));

    // The CSS program `div p { color: black }` as a transducer: one state
    // tracks "am I inside a div?"; matching p nodes get color := "black".
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let top = b.state("top");
    let in_div = b.state("in_div");
    let set_black = LabelFn::new(vec![tag.clone(), Term::str("black"), bg.clone()]);
    let keep = LabelFn::identity(3);
    let is_div = Formula::eq(tag.clone(), Term::str("div"));
    let is_p = Formula::eq(tag.clone(), Term::str("p"));
    for (state, inside) in [(top, false), (in_div, true)] {
        b.plain_rule(
            state,
            nil,
            Formula::True,
            Out::node(nil, keep.clone(), vec![]),
        );
        // Entering a div: children processed in `in_div`.
        b.plain_rule(
            state,
            node,
            is_div.clone(),
            Out::node(
                node,
                keep.clone(),
                vec![Out::Call(in_div, 0), Out::Call(state, 1)],
            ),
        );
        // A p node: selected only when inside a div.
        let style = if inside { &set_black } else { &keep };
        b.plain_rule(
            state,
            node,
            is_p.clone(),
            Out::node(
                node,
                style.clone(),
                vec![Out::Call(state, 0), Out::Call(state, 1)],
            ),
        );
        // Everything else keeps its style.
        b.plain_rule(
            state,
            node,
            is_div.clone().not().and(is_p.clone().not()),
            Out::node(
                node,
                keep.clone(),
                vec![Out::Call(state, 0), Out::Call(state, 1)],
            ),
        );
    }
    let css = b.build(top);

    // Unreadable outputs: some node where color = bg (fully symbolic —
    // quantified over ALL strings, not an enumerated palette).
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let bad = b.state("unreadable");
    b.rule(
        bad,
        node,
        Formula::eq(color.clone(), bg.clone()),
        vec![Default::default(), Default::default()],
    );
    b.simple_rule(bad, node, Formula::True, vec![Some(bad), None]);
    b.simple_rule(bad, node, Formula::True, vec![None, Some(bad)]);
    let unreadable = b.build(bad);

    // Which inputs does the CSS program make unreadable? Restrict to
    // inputs that are readable to begin with, so the witness shows the
    // CSS *introducing* the problem.
    let readable_inputs = complement(&unreadable)?;
    let offending = intersect(&preimage(&css, &unreadable)?, &readable_inputs);
    let w = witness(&offending)?.expect("the check should find an offender");
    println!("readable inputs that C(H) renders unreadable exist, e.g.:");
    println!("  H    = {}", w.display(&ty));
    let styled = css.run(&w)?.pop().unwrap();
    println!("  C(H) = {}", styled.display(&ty));
    assert!(readable_inputs.accepts(&w));
    assert!(unreadable.accepts(&styled));

    // A safe input set: documents whose backgrounds are all white and
    // colors never white.
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let safe = b.state("safe");
    b.leaf_rule(safe, nil, Formula::True);
    b.simple_rule(
        safe,
        node,
        Formula::eq(bg.clone(), Term::str("white"))
            .and(Formula::ne(color.clone(), Term::str("white"))),
        vec![Some(safe), Some(safe)],
    );
    let safe_docs = b.build(safe);

    // type-check: on safe inputs, the CSS program never produces an
    // unreadable node (black-on-white stays readable).
    let readable = complement(&unreadable)?;
    let ok = type_check(&safe_docs, &css, &readable)?;
    println!("\ntype-check(safe white-background docs, css, readable) = {ok}");
    assert!(ok);
    Ok(())
}
