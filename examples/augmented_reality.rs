//! §5.2: checking two augmented-reality taggers for conflicts with the
//! composition → input restriction → output restriction → emptiness
//! pipeline.
//!
//! Run with: `cargo run --example augmented_reality`

use fast::prelude::*;
use std::sync::Arc;

/// A tagger labeling elements whose value is in a residue class: walks
/// the element list, prepending `tag[id]` where `v % m == r`.
fn tagger(ty: &Arc<TreeType>, alg: &Arc<LabelAlg>, id: i64, m: u32, r: i64) -> Sttr {
    let nil = ty.ctor_id("nil").unwrap();
    let tag = ty.ctor_id("tag").unwrap();
    let elem = ty.ctor_id("elem").unwrap();
    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let q = b.state("walk");
    let copy = b.state("copy");
    b.plain_rule(
        copy,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::identity(1), vec![]),
    );
    b.plain_rule(
        copy,
        tag,
        Formula::True,
        Out::node(tag, LabelFn::identity(1), vec![Out::Call(copy, 0)]),
    );
    b.plain_rule(
        q,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::identity(1), vec![]),
    );
    let g = Formula::eq(Term::field(0).modulo(m), Term::int(r));
    b.plain_rule(
        q,
        elem,
        g.clone(),
        Out::node(
            elem,
            LabelFn::identity(1),
            vec![
                Out::node(
                    tag,
                    LabelFn::new(vec![Term::int(id)]),
                    vec![Out::Call(copy, 0)],
                ),
                Out::Call(q, 1),
            ],
        ),
    );
    b.plain_rule(
        q,
        elem,
        g.not(),
        Out::node(
            elem,
            LabelFn::identity(1),
            vec![Out::Call(copy, 0), Out::Call(q, 1)],
        ),
    );
    b.build(q)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // World: a list of elements, each with a list of tags.
    let ty = TreeType::new(
        "World",
        LabelSig::single("v", Sort::Int),
        vec![("nil", 0), ("tag", 1), ("elem", 2)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let nil = ty.ctor_id("nil").unwrap();
    let tag = ty.ctor_id("tag").unwrap();
    let elem = ty.ctor_id("elem").unwrap();

    // Input restriction: worlds without any tags.
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let empty = b.state("empty");
    let clean = b.state("noTags");
    b.leaf_rule(empty, nil, Formula::True);
    b.leaf_rule(clean, nil, Formula::True);
    b.simple_rule(clean, elem, Formula::True, vec![Some(empty), Some(clean)]);
    let no_tags = b.build(clean);

    // Output restriction: some element carries two tags.
    let mut b = StaBuilder::new(ty.clone(), alg.clone());
    let one = b.state("one");
    let two = b.state("two");
    let conflict = b.state("conflict");
    b.simple_rule(one, tag, Formula::True, vec![None]);
    b.simple_rule(two, tag, Formula::True, vec![Some(one)]);
    b.simple_rule(conflict, elem, Formula::True, vec![Some(two), None]);
    b.simple_rule(conflict, elem, Formula::True, vec![None, Some(conflict)]);
    let double_tag = b.build(conflict);

    let check = |a: &Sttr, b: &Sttr| -> Result<bool, Box<dyn std::error::Error>> {
        let composed = compose(a, b)?.sttr; // 1. composition
        let on_clean = restrict(&composed, &no_tags)?; // 2. input restriction
        let conflicting = restrict_out(&on_clean, &double_tag)?; // 3. output restriction
        Ok(!fast::core::is_empty_transducer(&conflicting)?) // 4. check
    };

    // mod-6 ≡ 1 vs mod-4 ≡ 3: both hold at v = 7, 19, … → conflict.
    let t1 = tagger(&ty, &alg, 1, 6, 1);
    let t2 = tagger(&ty, &alg, 2, 4, 3);
    println!(
        "tagger1 (v%6=1) vs tagger2 (v%4=3): conflict = {}",
        check(&t1, &t2)?
    );

    // Even vs odd taggers can never label the same element.
    let even = tagger(&ty, &alg, 3, 2, 0);
    let odd = tagger(&ty, &alg, 4, 2, 1);
    println!(
        "tagger3 (even)  vs tagger4 (odd):   conflict = {}",
        check(&even, &odd)?
    );

    // Concrete demonstration: run both conflicting taggers in sequence.
    let world = Tree::parse(&ty, "elem[7](nil[0], nil[0])")?;
    let both = compose(&t1, &t2)?.sttr;
    let tagged = both.run(&world)?.pop().unwrap();
    println!("\nelement v=7 after both taggers: {}", tagged.display(&ty));
    Ok(())
}
