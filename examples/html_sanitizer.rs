//! The paper's §2 walk-through: an HTML sanitizer in Fast, its analysis,
//! the bug the analysis finds, and the verified fix — then sanitizing a
//! real document through the Fig. 3 encoding.
//!
//! Run with: `cargo run --example html_sanitizer`

use fast::trees::{HtmlDoc, HtmlElem};

fn program(script_rule: &str) -> String {
    format!(
        r#"
type HtmlE[tag: String] {{ nil(0), val(1), attr(2), node(3) }}
lang nodeTree: HtmlE {{
  node(x1, x2, x3) given (attrTree x1) (nodeTree x2) (nodeTree x3)
| nil() where (tag = "")
}}
lang attrTree: HtmlE {{
  attr(x1, x2) given (valTree x1) (attrTree x2)
| nil() where (tag = "")
}}
lang valTree: HtmlE {{
  val(x1) where (tag != "") given (valTree x1)
| nil() where (tag = "")
}}
trans remScript: HtmlE -> HtmlE {{
  node(x1, x2, x3) where (tag != "script")
    to (node [tag] x1 (remScript x2) (remScript x3))
| {script_rule}
| nil() to (nil [tag])
}}
trans esc: HtmlE -> HtmlE {{
  node(x1, x2, x3) to (node [tag] (esc x1) (esc x2) (esc x3))
| attr(x1, x2) to (attr [tag] (esc x1) (esc x2))
| val(x1) where (tag = "'" or tag = "\"")
    to (val ["\\"] (val [tag] (esc x1)))
| val(x1) where (tag != "'" and tag != "\"")
    to (val [tag] (esc x1))
| nil() to (nil [tag])
}}
def rem_esc: HtmlE -> HtmlE := (compose remScript esc)
def sani: HtmlE -> HtmlE := (restrict rem_esc nodeTree)
lang badOutput: HtmlE {{
  node(x1, x2, x3) where (tag = "script")
| node(x1, x2, x3) given (badOutput x2)
| node(x1, x2, x3) given (badOutput x3)
}}
def bad_inputs: HtmlE := (pre-image sani badOutput)
assert-true (is-empty bad_inputs)
"#
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The buggy version from Fig. 2: `to x3` forgets to keep sanitizing
    // the next sibling.
    println!("=== analyzing the BUGGY sanitizer (Fig. 2 as printed) ===");
    let buggy = fast::lang::compile(&program(r#"node(x1, x2, x3) where (tag = "script") to x3"#))?;
    let a = &buggy.report().assertions[0];
    println!(
        "assert-true (is-empty bad_inputs): {}",
        if a.passed() { "PASS" } else { "FAIL" }
    );
    if let Some(cx) = &a.counterexample {
        println!("counterexample input (a script survives sanitization!):\n  {cx}");
    }

    println!("\n=== analyzing the FIXED sanitizer ===");
    let fixed = fast::lang::compile(&program(
        r#"node(x1, x2, x3) where (tag = "script") to (remScript x3)"#,
    ))?;
    println!(
        "assert-true (is-empty bad_inputs): {}",
        if fixed.report().all_passed() {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // Sanitize the paper's Fig. 3 document — through the batch runtime:
    // compile the verified transducer into an evaluation plan once, then
    // feed it documents as a batch (a sanitization service's shape).
    let doc = HtmlDoc::new(vec![
        HtmlElem::new("div")
            .with_attr("id", "e\"")
            .with_child(HtmlElem::new("script").with_text("a")),
        HtmlElem::new("br"),
    ]);
    println!("\ninput HTML:     {}", doc.render());
    let ty = fixed.tree_type("HtmlE").unwrap();
    let plan = fast::rt::Plan::compile(fixed.transducer("sani").unwrap());
    // A second submission of the same document: the plan's shared memo
    // answers it at the root without re-sanitizing.
    let encoded = doc.encode(ty);
    let batch = vec![encoded.clone(), encoded];
    let (results, stats) = plan.run_batch_with(&batch, &fast::rt::RunOptions::default());
    let out = results
        .into_iter()
        .next()
        .unwrap()
        .map_err(std::io::Error::other)?;
    let sanitized = HtmlDoc::decode(ty, &out[0]).map_err(std::io::Error::other)?;
    println!("sanitized HTML: {}", sanitized.render());
    println!(
        "batch of {} through the rt plan: {} memo hits / {} misses",
        stats.items, stats.memo_hits, stats.memo_misses
    );
    Ok(())
}
