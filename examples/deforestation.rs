//! §5.3 deforestation: composing `map_caesar` with itself keeps a single
//! tree traversal no matter how many passes are fused, while the naive
//! pipeline materializes an intermediate list per pass.
//!
//! Run with: `cargo run --release --example deforestation`

use fast::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ty = TreeType::new(
        "IList",
        LabelSig::single("i", Sort::Int),
        vec![("nil", 0), ("cons", 1)],
    );
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));
    let nil = ty.ctor_id("nil").unwrap();
    let cons = ty.ctor_id("cons").unwrap();

    let mut b = SttrBuilder::new(ty.clone(), alg.clone());
    let q = b.state("map_caesar");
    b.plain_rule(
        q,
        nil,
        Formula::True,
        Out::node(nil, LabelFn::new(vec![Term::int(0)]), vec![]),
    );
    b.plain_rule(
        q,
        cons,
        Formula::True,
        Out::node(
            cons,
            LabelFn::new(vec![Term::field(0).add(Term::int(5)).modulo(26)]),
            vec![Out::Call(q, 0)],
        ),
    );
    let map = b.build(q);

    // Input: list of 4,096 integers (the Fig. 7 workload).
    let mut input = Tree::leaf(nil, Label::single(0i64));
    for i in 0..4096i64 {
        input = Tree::new(cons, Label::single(i % 100), vec![input]);
    }

    println!("{:>6} {:>12} {:>12}", "n", "fused (ms)", "naive (ms)");
    for n in [1usize, 8, 64, 256] {
        // Fuse n maps into one transducer…
        let mut fused = map.clone();
        for _ in 1..n {
            fused = compose(&fused, &map)?.sttr;
        }
        let start = Instant::now();
        let fast_out = fused.run(&input)?.pop().unwrap();
        let fused_ms = start.elapsed().as_secs_f64() * 1e3;

        // …vs applying map n times, materializing each intermediate list.
        let start = Instant::now();
        let mut naive_out = input.clone();
        for _ in 0..n {
            naive_out = map.run(&naive_out)?.pop().unwrap();
        }
        let naive_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(fast_out, naive_out);
        println!("{n:>6} {fused_ms:>12.2} {naive_ms:>12.2}");
    }
    println!("\nThe fused column stays flat (Fig. 7): composition performs deforestation.");
    Ok(())
}
