//! Quickstart: build a symbolic tree automaton and transducer through the
//! library API, run them, compose them, and analyze the result.
//!
//! Run with: `cargo run --example quickstart`

use fast::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tree type: integer-labeled binary trees.
    let bt = TreeType::new(
        "BT",
        LabelSig::single("i", Sort::Int),
        vec![("L", 0), ("N", 2)],
    );
    let alg = Arc::new(LabelAlg::new(bt.sig().clone()));
    let leaf = bt.ctor_id("L").unwrap();
    let node = bt.ctor_id("N").unwrap();

    // 2. A language: trees whose leaves are all positive.
    let mut b = StaBuilder::new(bt.clone(), alg.clone());
    let pos = b.state("pos");
    b.leaf_rule(
        pos,
        leaf,
        Formula::cmp(CmpOp::Gt, Term::field(0), Term::int(0)),
    );
    b.simple_rule(pos, node, Formula::True, vec![Some(pos), Some(pos)]);
    let all_positive = b.build(pos);

    let t = Tree::parse(&bt, "N[0](L[1], N[5](L[2], L[3]))")?;
    println!("tree: {}", t.display(&bt));
    println!("all leaves positive? {}", all_positive.accepts(&t));

    // 3. A transducer: double every label.
    let mut b = SttrBuilder::new(bt.clone(), alg.clone());
    let q = b.state("double");
    b.plain_rule(
        q,
        leaf,
        Formula::True,
        Out::node(
            leaf,
            LabelFn::new(vec![Term::field(0).mul(Term::int(2))]),
            vec![],
        ),
    );
    b.plain_rule(
        q,
        node,
        Formula::True,
        Out::node(
            node,
            LabelFn::new(vec![Term::field(0).mul(Term::int(2))]),
            vec![Out::Call(q, 0), Out::Call(q, 1)],
        ),
    );
    let double = b.build(q);
    let doubled = double.run(&t)?.pop().unwrap();
    println!("doubled: {}", doubled.display(&bt));

    // 4. Compose double with itself: one pass that multiplies by 4.
    let quadruple = compose(&double, &double)?.sttr;
    let quadrupled = quadruple.run(&t)?.pop().unwrap();
    println!(
        "quadrupled (single fused pass): {}",
        quadrupled.display(&bt)
    );

    // 5. Analysis: which inputs does `double` map into `all_positive`?
    // (Exactly the positive-leaved trees, since doubling preserves sign.)
    let pre = preimage(&double, &all_positive)?;
    println!("pre-image accepts the tree? {}", pre.accepts(&t));
    let neg = Tree::parse(&bt, "N[1](L[-1], L[1])")?;
    println!(
        "pre-image accepts a tree with a negative leaf? {}",
        pre.accepts(&neg)
    );
    assert!(equivalent(&pre, &all_positive)?);
    println!("verified: pre-image(double, all_positive) == all_positive");
    Ok(())
}
