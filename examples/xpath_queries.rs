//! XPath queries as symbolic tree automata (the §7 "identify a fragment
//! of XPath expressible in Fast" direction, implemented).
//!
//! Compiles navigational XPath over the paper's HtmlE encoding into STAs
//! and combines them with the full language algebra: intersection,
//! complement, witness synthesis, and pre-image through the sanitizer.
//!
//! Run with: `cargo run --release --example xpath_queries`

use fast::lang::xpath::compile_xpath;
use fast::prelude::*;
use fast::trees::{html_type, HtmlDoc, HtmlElem};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ty = html_type();
    let alg = Arc::new(LabelAlg::new(ty.sig().clone()));

    let doc =
        HtmlDoc::new(vec![HtmlElem::new("div")
            .with_attr("id", "main")
            .with_child(HtmlElem::new("p").with_attr("class", "x").with_child(
                HtmlElem::new("a").with_attr("href", "https://example.org"),
            ))]);
    let encoded = doc.encode(&ty);
    println!("document: {}", doc.render());

    for expr in [
        "//p",
        "/div/p/a[@href]",
        "//a[@href='https://example.org']",
        "//div[@id='main']//a",
        "//script",
    ] {
        let query = compile_xpath(&ty, &alg, expr)?;
        println!("{expr:<40} matches: {}", query.accepts(&encoded));
    }

    // Language algebra over queries: documents with a link but no <div>.
    // Intersect with the well-formed-encoding language (Fig. 2's
    // nodeTree) so the synthesized witness decodes back to a document.
    let node_tree = {
        let nil = ty.ctor_id("nil").unwrap();
        let val = ty.ctor_id("val").unwrap();
        let attr = ty.ctor_id("attr").unwrap();
        let node = ty.ctor_id("node").unwrap();
        let mut b = StaBuilder::new(ty.clone(), alg.clone());
        let nt = b.state("nodeTree");
        let at = b.state("attrTree");
        let vt = b.state("valTree");
        let empty_tag = Formula::eq(Term::field(0), Term::str(""));
        b.leaf_rule(nt, nil, empty_tag.clone());
        b.simple_rule(nt, node, Formula::True, vec![Some(at), Some(nt), Some(nt)]);
        b.leaf_rule(at, nil, empty_tag.clone());
        b.simple_rule(at, attr, Formula::True, vec![Some(vt), Some(at)]);
        b.leaf_rule(vt, nil, empty_tag.clone());
        b.simple_rule(vt, val, empty_tag.not(), vec![Some(vt)]);
        b.build(nt)
    };
    let links = compile_xpath(&ty, &alg, "//a[@href]")?;
    let divs = compile_xpath(&ty, &alg, "//div")?;
    let link_no_div = intersect(&node_tree, &intersect(&links, &complement(&divs)?));
    let w = witness(&link_no_div)?.expect("such documents exist");
    let example = HtmlDoc::decode(&ty, &w).map_err(std::io::Error::other)?;
    println!(
        "\na linked, div-free document, synthesized: {}",
        example.render()
    );

    // Queries compose with transducers too: is there an input whose
    // *sanitized* form still matches //script? (No — verified.)
    let program = r#"
        type HtmlE[tag: String] { nil(0), val(1), attr(2), node(3) }
        trans remScript: HtmlE -> HtmlE {
          node(x1, x2, x3) where (tag != "script")
            to (node [tag] x1 (remScript x2) (remScript x3))
        | node(x1, x2, x3) where (tag = "script") to (remScript x3)
        | nil() to (nil [tag])
        }
    "#;
    let compiled = fast::lang::compile(program)?;
    let sani = compiled.transducer("remScript").unwrap();
    // Note: the DSL compiled its own HtmlE type; rebuild the query there.
    let ty2 = compiled.tree_type("HtmlE").unwrap();
    let alg2 = compiled.alg("HtmlE").unwrap();
    let scripts = compile_xpath(ty2, alg2, "//script")?;
    let dangerous_inputs = preimage(sani, &scripts)?;
    println!(
        "inputs whose sanitized output matches //script: {}",
        if is_empty(&dangerous_inputs)? {
            "none (verified)"
        } else {
            "found!"
        }
    );
    Ok(())
}
