//! Offline drop-in subset of the `proptest` API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its test suites use:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_filter`,
//!   `prop_recursive`, `boxed`;
//! * [`Just`], ranges, tuples (arity ≤ 4), `&str` mini-regexes of the
//!   form `[class]{m,n}`, [`collection::vec`], [`any`];
//! * the [`proptest!`] macro plus `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assume!`, `prop_oneof!`, and [`ProptestConfig`].
//!
//! Differences from upstream: generation is deterministic per test (the
//! RNG is seeded from the test function's name), there is no shrinking,
//! and failure persistence files (`*.proptest-regressions`) are ignored.

use std::ops::Range;
use std::sync::Arc;

/// Deterministic generation context handed to strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i128` in `[lo, hi)`.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` (regenerates, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Builds recursive values: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for compound cases; `self`
    /// generates the base cases. `_desired_size` and `_branch` are
    /// accepted for upstream signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            let b = base.clone();
            // Bias toward compound cases so structures stay interesting;
            // the innermost level is always the base, so this terminates.
            cur = Pick {
                choices: vec![(1, b), (3, rec)],
            }
            .boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_generate(&self, g: &mut Gen) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, g: &mut Gen) -> S::Value {
        self.generate(g)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        self.0.dyn_generate(g)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for FlatMap<S, F> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, g: &mut Gen) -> S2::Value {
        (self.f)(self.inner.generate(g)).generate(g)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Clone, F: Clone> Clone for Filter<S, F> {
    fn clone(&self) -> Self {
        Filter {
            inner: self.inner.clone(),
            pred: self.pred.clone(),
            reason: self.reason,
        }
    }
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(g);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Weighted union of boxed strategies (backs [`prop_oneof!`]).
pub struct Pick<V> {
    /// `(weight, strategy)` choices.
    pub choices: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Clone for Pick<V> {
    fn clone(&self) -> Self {
        Pick {
            choices: self.choices.clone(),
        }
    }
}

impl<V> Strategy for Pick<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        let total: u32 = self.choices.iter().map(|(w, _)| *w).sum();
        let mut pick = g.below(total as usize) as u32;
        for (w, s) in &self.choices {
            if pick < *w {
                return s.generate(g);
            }
            pick -= w;
        }
        unreachable!("weights sum correctly")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.in_range(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.in_range(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(g),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// `&str` strategies: a mini-regex `[class]{m,n}` (or a sequence of
/// classes/literals, each optionally repeated) generating `String`s.
/// Classes support ranges (`a-z`), escapes (`\\`, `\"`), and literal
/// characters; this covers every pattern the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        let elems = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in elems {
            let n = if lo == hi {
                lo
            } else {
                g.in_range(lo as i128, hi as i128 + 1) as usize
            };
            for _ in 0..n {
                out.push(chars[g.below(chars.len())]);
            }
        }
        out
    }
}

/// Parses the supported mini-regex into `(alternatives, min, max)` runs.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut out = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = it.next().expect("unterminated char class");
                match c {
                    ']' => break,
                    '\\' => {
                        let esc = it.next().expect("dangling escape");
                        set.push(esc);
                        prev = Some(esc);
                    }
                    '-' if prev.is_some() && it.peek() != Some(&']') => {
                        let hi = it.next().unwrap();
                        let lo = set.pop().unwrap();
                        for ch in lo as u32..=hi as u32 {
                            set.push(char::from_u32(ch).unwrap());
                        }
                        prev = None;
                    }
                    other => {
                        set.push(other);
                        prev = Some(other);
                    }
                }
            }
            set
        } else if c == '\\' {
            vec![it.next().expect("dangling escape")]
        } else {
            vec![c]
        };
        let (lo, hi) = if it.peek() == Some(&'{') {
            it.next();
            let mut lo = String::new();
            let mut hi = String::new();
            let mut in_hi = false;
            loop {
                match it.next().expect("unterminated repetition") {
                    '}' => break,
                    ',' => in_hi = true,
                    d => {
                        if in_hi {
                            hi.push(d)
                        } else {
                            lo.push(d)
                        }
                    }
                }
            }
            let lo: usize = lo.parse().expect("repetition bound");
            let hi: usize = if in_hi {
                hi.parse().expect("bound")
            } else {
                lo
            };
            (lo, hi)
        } else {
            (1, 1)
        };
        out.push((chars, lo, hi));
    }
    out
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

struct FnStrategy<V, F: Fn(&mut Gen) -> V>(F);
impl<V, F: Fn(&mut Gen) -> V> Strategy for FnStrategy<V, F> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        (self.0)(g)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        FnStrategy(|g: &mut Gen| g.next_u64() & 1 == 1).boxed()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                FnStrategy(|g: &mut Gen| g.next_u64() as $t).boxed()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};

    /// Length specification for [`vec`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                g.in_range(self.size.lo as i128, self.size.hi as i128) as usize
            };
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive per-test deterministic seeds from test names.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform (or weighted, via `w => strat`) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Pick { choices: vec![$(($weight, $crate::Strategy::boxed($strat))),+] }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Pick { choices: vec![$((1u32, $crate::Strategy::boxed($strat))),+] }
    };
}

/// Asserts inside a property (upstream: fails the case; here: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner ($cfg); $($rest)*);
    };
    (@inner ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut gen = $crate::Gen::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut gen);)*
                    // One closure per case so `prop_assume!` can skip via
                    // early return. (`mut` is only needed when the body
                    // mutates a capture, hence the allow.)
                    #[allow(unused_mut)]
                    let mut case = move || $body;
                    case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@inner ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let s = (0i64..10).prop_map(|x| x * 2);
        let mut g = crate::Gen::new(1);
        for _ in 0..100 {
            let v = s.generate(&mut g);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn mini_regex() {
        let mut g = crate::Gen::new(2);
        for _ in 0..100 {
            let s = "[a-c]{0,3}".generate(&mut g);
            assert!(s.len() <= 3 && s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = r#"[a-z"\\]{0,5}"#.generate(&mut g);
            assert!(t.len() <= 5);
            let u = "[ -~]{0,8}".generate(&mut g);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &T) -> bool {
            match t {
                T::Leaf(n) => (0..5).contains(n),
                T::Node(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let leaf = (0i64..5).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut g = crate::Gen::new(3);
        for _ in 0..200 {
            let t = s.generate(&mut g);
            assert!(depth(&t) <= 4);
            assert!(leaves_in_range(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_works(a in 0i64..5, b in prop_oneof![Just(1i64), Just(2i64)]) {
            prop_assume!(a != 4);
            prop_assert!(a < 4);
            prop_assert_eq!(b * 2, b + b);
        }
    }

    proptest! {
        #[test]
        fn collections(v in collection::vec(0u8..4, 0..6), b in any::<bool>()) {
            prop_assert!(v.len() < 6);
            prop_assert!(u8::from(b) <= 1);
        }
    }
}
