//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a seeded
//! deterministic generator ([`rngs::StdRng`]), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] convenience methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is splitmix64, which has excellent statistical quality
//! for test-data generation. Streams differ from upstream `rand` for the
//! same seed; the workspace only relies on determinism, not on specific
//! streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Samples a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges a uniform value can be drawn from (`gen_range` operand).
pub trait SampleRange<T> {
    /// Samples a value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: u8 = r.gen_range(b'a'..=b'z');
            assert!(y.is_ascii_lowercase());
            let z: usize = r.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
