//! Offline drop-in subset of the `criterion` API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of `criterion` its benches use:
//! [`Criterion::benchmark_group`] / [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this runs a short
//! warm-up, then `sample_size` timed iterations, and prints the mean and
//! min wall-clock time per iteration.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Identifier `function/parameter` for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// How `iter_batched` amortizes setup cost (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            self.name, mean, min, n
        );
    }

    /// Benches `f` under `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), &mut f);
    }

    /// Benches `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), &mut |b| f(b, input));
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
            sample_size: 20,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
    }
}

/// Declares a group runner function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * v, BatchSize::SmallInput)
        });
        g.finish();
    }
}
